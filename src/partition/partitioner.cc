#include "partition/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <queue>
#include <vector>

#include "common/rng.h"

namespace dynasore::part {

using common::Rng;

namespace {

// Weighted undirected CSR used throughout the multilevel pipeline.
struct WGraph {
  std::vector<std::uint64_t> offsets{0};
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> ew;  // edge weights, parallel to adj
  std::vector<std::uint32_t> vw;  // vertex weights
  std::uint64_t total_vw = 0;

  std::uint32_t n() const { return static_cast<std::uint32_t>(vw.size()); }
  std::span<const std::uint32_t> neighbors(std::uint32_t u) const {
    return {adj.data() + offsets[u],
            static_cast<std::size_t>(offsets[u + 1] - offsets[u])};
  }
};

WGraph FromSocialGraph(const graph::SocialGraph& social) {
  const graph::SocialGraph undirected =
      social.directed() ? social.AsUndirected() : social;
  WGraph g;
  const std::uint32_t n = undirected.num_users();
  g.vw.assign(n, 1);
  g.total_vw = n;
  g.offsets.assign(n + 1, 0);
  std::uint64_t total = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    total += undirected.Followees(u).size();
    g.offsets[u + 1] = total;
  }
  g.adj.reserve(total);
  g.ew.assign(total, 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    const auto nbrs = undirected.Followees(u);
    g.adj.insert(g.adj.end(), nbrs.begin(), nbrs.end());
  }
  return g;
}

// ----- Coarsening -----

struct Coarsening {
  WGraph graph;
  std::vector<std::uint32_t> fine_to_coarse;
};

Coarsening Coarsen(const WGraph& g, Rng& rng) {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  constexpr std::uint32_t kUnmatched = 0xFFFFFFFFu;
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (std::uint32_t u : order) {
    if (match[u] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    std::uint32_t best_w = 0;
    for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const std::uint32_t v = g.adj[i];
      if (v == u || match[v] != kUnmatched) continue;
      if (g.ew[i] > best_w) {
        best_w = g.ew[i];
        best = v;
      }
    }
    if (best == kUnmatched) {
      match[u] = u;
    } else {
      match[u] = best;
      match[best] = u;
    }
  }

  Coarsening result;
  result.fine_to_coarse.assign(n, kUnmatched);
  std::uint32_t coarse_n = 0;
  for (std::uint32_t u : order) {
    if (result.fine_to_coarse[u] != kUnmatched) continue;
    result.fine_to_coarse[u] = coarse_n;
    result.fine_to_coarse[match[u]] = coarse_n;  // match[u] == u if solo
    ++coarse_n;
  }

  // Aggregate vertex weights and edges.
  WGraph& cg = result.graph;
  cg.vw.assign(coarse_n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    cg.vw[result.fine_to_coarse[u]] += g.vw[u];
  }
  cg.total_vw = g.total_vw;

  // Members of each coarse vertex.
  std::vector<std::uint32_t> member_offsets(coarse_n + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) ++member_offsets[result.fine_to_coarse[u] + 1];
  for (std::uint32_t c = 0; c < coarse_n; ++c) member_offsets[c + 1] += member_offsets[c];
  std::vector<std::uint32_t> members(n);
  {
    std::vector<std::uint32_t> cursor(member_offsets.begin(),
                                      member_offsets.end() - 1);
    for (std::uint32_t u = 0; u < n; ++u) members[cursor[result.fine_to_coarse[u]]++] = u;
  }

  // Timestamped dense accumulator avoids a hash map in the hot loop.
  std::vector<std::uint32_t> stamp(coarse_n, 0xFFFFFFFFu);
  std::vector<std::uint64_t> weight_at(coarse_n, 0);
  std::vector<std::uint32_t> touched;
  cg.offsets.assign(coarse_n + 1, 0);
  // First pass counts, second fills; to avoid two passes we buffer edges.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> coarse_edges;  // (to, w)
  std::vector<std::uint64_t> per_vertex_counts(coarse_n, 0);
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> buffered(
      coarse_n);
  for (std::uint32_t c = 0; c < coarse_n; ++c) {
    touched.clear();
    for (std::uint32_t mi = member_offsets[c]; mi < member_offsets[c + 1];
         ++mi) {
      const std::uint32_t u = members[mi];
      for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        const std::uint32_t vc = result.fine_to_coarse[g.adj[i]];
        if (vc == c) continue;  // internal edge collapses
        if (stamp[vc] != c) {
          stamp[vc] = c;
          weight_at[vc] = 0;
          touched.push_back(vc);
        }
        weight_at[vc] += g.ew[i];
      }
    }
    std::sort(touched.begin(), touched.end());
    auto& bucket = buffered[c];
    bucket.reserve(touched.size());
    for (std::uint32_t vc : touched) {
      bucket.emplace_back(vc, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                  weight_at[vc], 0xFFFFFFFFu)));
    }
    per_vertex_counts[c] = bucket.size();
  }
  std::uint64_t total_edges = 0;
  for (std::uint32_t c = 0; c < coarse_n; ++c) {
    total_edges += per_vertex_counts[c];
    cg.offsets[c + 1] = total_edges;
  }
  cg.adj.resize(total_edges);
  cg.ew.resize(total_edges);
  for (std::uint32_t c = 0; c < coarse_n; ++c) {
    std::uint64_t pos = cg.offsets[c];
    for (const auto& [vc, w] : buffered[c]) {
      cg.adj[pos] = vc;
      cg.ew[pos] = w;
      ++pos;
    }
  }
  return result;
}

// ----- Bisection -----

struct Bisection {
  std::vector<std::uint8_t> side;  // 0 or 1 per vertex
  std::uint64_t cut = 0;
};

std::uint64_t CutOf(const WGraph& g, std::span<const std::uint8_t> side) {
  std::uint64_t cut = 0;
  for (std::uint32_t u = 0; u < g.n(); ++u) {
    for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const std::uint32_t v = g.adj[i];
      if (u < v && side[u] != side[v]) cut += g.ew[i];
    }
  }
  return cut;
}

// Greedy BFS growing: grow side 0 from a random seed until it reaches the
// target weight.
Bisection GrowBisection(const WGraph& g, double target_frac, Rng& rng) {
  const std::uint32_t n = g.n();
  Bisection bisection;
  bisection.side.assign(n, 1);
  const auto target =
      static_cast<std::uint64_t>(target_frac * static_cast<double>(g.total_vw));
  std::uint64_t grown = 0;
  std::vector<std::uint32_t> queue;
  std::vector<std::uint8_t> seen(n, 0);
  std::size_t head = 0;
  while (grown < target) {
    if (head == queue.size()) {
      // Pick a fresh random unvisited seed (graph may be disconnected).
      std::uint32_t seed = 0;
      bool found = false;
      for (std::uint32_t attempt = 0; attempt < 32 && !found; ++attempt) {
        seed = static_cast<std::uint32_t>(rng.NextBounded(n));
        found = !seen[seed];
      }
      if (!found) {
        for (std::uint32_t u = 0; u < n && !found; ++u) {
          if (!seen[u]) {
            seed = u;
            found = true;
          }
        }
      }
      if (!found) break;
      seen[seed] = 1;
      queue.push_back(seed);
    }
    const std::uint32_t u = queue[head++];
    bisection.side[u] = 0;
    grown += g.vw[u];
    for (std::uint32_t v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    }
  }
  bisection.cut = CutOf(g, bisection.side);
  return bisection;
}

// One Fiduccia-Mattheyses pass with rollback to the best prefix. Returns the
// achieved cut.
std::uint64_t FMPass(const WGraph& g, std::vector<std::uint8_t>& side,
                     std::uint64_t cut, double target_frac, double imbalance) {
  const std::uint32_t n = g.n();
  std::array<std::uint64_t, 2> weight{0, 0};
  for (std::uint32_t u = 0; u < n; ++u) weight[side[u]] += g.vw[u];
  const double total = static_cast<double>(g.total_vw);
  const std::array<std::uint64_t, 2> max_weight{
      static_cast<std::uint64_t>(total * target_frac * imbalance),
      static_cast<std::uint64_t>(total * (1.0 - target_frac) * imbalance)};

  // gain = external weight - internal weight.
  std::vector<std::int64_t> gain(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    std::int64_t gain_u = 0;
    for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      gain_u += side[g.adj[i]] != side[u] ? g.ew[i] : -std::int64_t{g.ew[i]};
    }
    gain[u] = gain_u;
  }

  // One max-heap per move direction. A direction whose destination side is
  // at its weight cap stays queued instead of being discarded, so
  // balance-restoring moves from the other side can unblock it (classic FM
  // behaviour; a single shared heap loses blocked candidates forever).
  using HeapEntry = std::pair<std::int64_t, std::uint32_t>;  // (gain, vertex)
  std::array<std::priority_queue<HeapEntry>, 2> heaps;
  std::vector<std::uint8_t> locked(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) heaps[side[u]].emplace(gain[u], u);

  // Drops stale entries (locked, moved sides, or outdated gain) and returns
  // whether the heap still has a valid top.
  auto clean_top = [&](std::uint8_t from) {
    auto& heap = heaps[from];
    while (!heap.empty()) {
      const auto [g_top, u] = heap.top();
      if (locked[u] || side[u] != from || g_top != gain[u]) {
        heap.pop();
        continue;
      }
      return true;
    }
    return false;
  };

  std::vector<std::uint32_t> moves;
  moves.reserve(n);
  std::uint64_t best_cut = cut;
  std::size_t best_prefix = 0;
  std::uint64_t current_cut = cut;

  while (true) {
    std::int64_t best_gain = 0;
    int chosen = -1;
    for (std::uint8_t from = 0; from < 2; ++from) {
      if (!clean_top(from)) continue;
      const auto [g_top, u] = heaps[from].top();
      const std::uint8_t to = from ^ 1u;
      if (weight[to] + g.vw[u] > max_weight[to]) continue;  // infeasible now
      if (chosen == -1 || g_top > best_gain) {
        best_gain = g_top;
        chosen = from;
      }
    }
    if (chosen == -1) break;
    const std::uint32_t u = heaps[chosen].top().second;
    heaps[chosen].pop();
    const auto from = static_cast<std::uint8_t>(chosen);
    const std::uint8_t to = from ^ 1u;
    locked[u] = 1;
    side[u] = to;
    weight[from] -= g.vw[u];
    weight[to] += g.vw[u];
    current_cut = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(current_cut) - gain[u]);
    moves.push_back(u);
    if (current_cut < best_cut) {
      best_cut = current_cut;
      best_prefix = moves.size();
    }
    for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const std::uint32_t v = g.adj[i];
      if (locked[v]) continue;
      // u switched sides: edges to v flip between internal and external.
      gain[v] += side[v] == side[u] ? -2 * std::int64_t{g.ew[i]}
                                    : 2 * std::int64_t{g.ew[i]};
      heaps[side[v]].emplace(gain[v], v);
    }
  }

  // Roll back everything after the best prefix.
  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    side[moves[i - 1]] ^= 1u;
  }
  return best_cut;
}

Bisection MultilevelBisect(const WGraph& g, double target_frac,
                           double imbalance, const PartitionConfig& config,
                           Rng& rng);

Bisection BisectBase(const WGraph& g, double target_frac, double imbalance,
                     const PartitionConfig& config, Rng& rng) {
  Bisection best;
  best.cut = ~std::uint64_t{0};
  for (int attempt = 0; attempt < config.init_tries; ++attempt) {
    Bisection candidate = GrowBisection(g, target_frac, rng);
    candidate.cut = FMPass(g, candidate.side, candidate.cut, target_frac,
                           imbalance);
    if (candidate.cut < best.cut) best = std::move(candidate);
  }
  return best;
}

Bisection MultilevelBisect(const WGraph& g, double target_frac,
                           double imbalance, const PartitionConfig& config,
                           Rng& rng) {
  if (g.n() <= config.coarsen_target) {
    return BisectBase(g, target_frac, imbalance, config, rng);
  }
  Coarsening coarsening = Coarsen(g, rng);
  // If matching stalls (coarse graph barely smaller), stop coarsening.
  if (coarsening.graph.n() > g.n() * 95 / 100) {
    return BisectBase(g, target_frac, imbalance, config, rng);
  }
  Bisection coarse =
      MultilevelBisect(coarsening.graph, target_frac, imbalance, config, rng);
  Bisection fine;
  fine.side.resize(g.n());
  for (std::uint32_t u = 0; u < g.n(); ++u) {
    fine.side[u] = coarse.side[coarsening.fine_to_coarse[u]];
  }
  fine.cut = CutOf(g, fine.side);
  for (int pass = 0; pass < config.refine_passes; ++pass) {
    const std::uint64_t refined =
        FMPass(g, fine.side, fine.cut, target_frac, imbalance);
    if (refined >= fine.cut) break;
    fine.cut = refined;
  }
  return fine;
}

// Extracts the sub-graph induced by vertices where side[v] == which, keeping
// only internal edges. `local_to_global` maps new ids back.
WGraph InducedSubgraph(const WGraph& g, std::span<const std::uint8_t> side,
                       std::uint8_t which,
                       std::span<const std::uint32_t> global_ids,
                       std::vector<std::uint32_t>& local_to_global) {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> global_to_local(n, 0xFFFFFFFFu);
  local_to_global.clear();
  for (std::uint32_t u = 0; u < n; ++u) {
    if (side[u] == which) {
      global_to_local[u] = static_cast<std::uint32_t>(local_to_global.size());
      local_to_global.push_back(global_ids[u]);
    }
  }
  WGraph sub;
  const auto sub_n = static_cast<std::uint32_t>(local_to_global.size());
  sub.vw.reserve(sub_n);
  sub.offsets.assign(1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    if (side[u] != which) continue;
    sub.vw.push_back(g.vw[u]);
    sub.total_vw += g.vw[u];
    for (std::uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const std::uint32_t v = g.adj[i];
      if (side[v] != which) continue;
      sub.adj.push_back(global_to_local[v]);
      sub.ew.push_back(g.ew[i]);
    }
    sub.offsets.push_back(sub.adj.size());
  }
  return sub;
}

// Recursive bisection assigning parts [part_offset, part_offset + k) to the
// vertices of `g` (whose original ids are `global_ids`).
void RecursiveKWay(const WGraph& g, std::span<const std::uint32_t> global_ids,
                   std::uint32_t k, std::uint32_t part_offset,
                   double level_imbalance, const PartitionConfig& config,
                   Rng& rng, std::vector<std::uint32_t>& out) {
  if (k <= 1 || g.n() == 0) {
    for (std::uint32_t id : global_ids) out[id] = part_offset;
    return;
  }
  const std::uint32_t k0 = k / 2;
  const std::uint32_t k1 = k - k0;
  const double frac = static_cast<double>(k0) / static_cast<double>(k);
  const Bisection bisection =
      MultilevelBisect(g, frac, level_imbalance, config, rng);

  std::vector<std::uint32_t> ids0;
  std::vector<std::uint32_t> ids1;
  const WGraph g0 = InducedSubgraph(g, bisection.side, 0, global_ids, ids0);
  const WGraph g1 = InducedSubgraph(g, bisection.side, 1, global_ids, ids1);
  RecursiveKWay(g0, ids0, k0, part_offset, level_imbalance, config, rng, out);
  RecursiveKWay(g1, ids1, k1, part_offset + k0, level_imbalance, config, rng,
                out);
}

double PerLevelImbalance(double imbalance, std::uint32_t k) {
  const int levels = std::max(1, static_cast<int>(std::ceil(std::log2(k))));
  return std::pow(imbalance, 1.0 / levels);
}

}  // namespace

std::vector<std::uint32_t> PartitionGraph(const graph::SocialGraph& social,
                                          const PartitionConfig& config) {
  assert(config.num_parts >= 1);
  const WGraph g = FromSocialGraph(social);
  std::vector<std::uint32_t> parts(g.n(), 0);
  if (config.num_parts == 1) return parts;
  std::vector<std::uint32_t> ids(g.n());
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(config.seed);
  RecursiveKWay(g, ids, config.num_parts, 0,
                PerLevelImbalance(config.imbalance, config.num_parts), config,
                rng, parts);
  return parts;
}

std::uint64_t ComputeEdgeCut(const graph::SocialGraph& social,
                             std::span<const std::uint32_t> parts) {
  const graph::SocialGraph undirected =
      social.directed() ? social.AsUndirected() : social;
  std::uint64_t cut = 0;
  for (UserId u = 0; u < undirected.num_users(); ++u) {
    for (UserId v : undirected.Followees(u)) {
      if (u < v && parts[u] != parts[v]) ++cut;
    }
  }
  return cut;
}

std::vector<std::uint32_t> HierarchicalPartition(
    const graph::SocialGraph& social, std::span<const std::uint32_t> fanouts,
    double imbalance, std::uint64_t seed) {
  assert(!fanouts.empty());
  const WGraph root = FromSocialGraph(social);
  std::vector<std::uint32_t> ids(root.n());
  std::iota(ids.begin(), ids.end(), 0);

  // Spread the allowed imbalance across the levels.
  const double per_level = std::pow(imbalance, 1.0 / fanouts.size());

  struct Item {
    WGraph graph;
    std::vector<std::uint32_t> ids;
    std::size_t level;
    std::uint32_t prefix;  // leaf-id prefix of ancestors
  };
  std::vector<std::uint32_t> leaf(root.n(), 0);
  std::vector<Item> stack;
  stack.push_back(Item{root, std::move(ids), 0, 0});
  Rng rng(seed);
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    const std::uint32_t fanout = fanouts[item.level];
    PartitionConfig config;
    config.num_parts = fanout;
    config.imbalance = per_level;
    config.seed = rng.NextU64();
    std::vector<std::uint32_t> local_parts(item.graph.n(), 0);
    if (fanout > 1) {
      std::vector<std::uint32_t> local_ids(item.graph.n());
      std::iota(local_ids.begin(), local_ids.end(), 0);
      Rng part_rng(config.seed);
      RecursiveKWay(item.graph, local_ids, fanout, 0,
                    PerLevelImbalance(per_level, fanout), config, part_rng,
                    local_parts);
    }
    if (item.level + 1 == fanouts.size()) {
      for (std::uint32_t u = 0; u < item.graph.n(); ++u) {
        leaf[item.ids[u]] = item.prefix * fanout + local_parts[u];
      }
      continue;
    }
    // Split into induced subgraphs per part and recurse one level down.
    for (std::uint32_t p = 0; p < fanout; ++p) {
      std::vector<std::uint8_t> side(item.graph.n(), 0);
      for (std::uint32_t u = 0; u < item.graph.n(); ++u) {
        side[u] = local_parts[u] == p ? 1 : 0;
      }
      std::vector<std::uint32_t> sub_ids;
      WGraph sub = InducedSubgraph(item.graph, side, 1, item.ids, sub_ids);
      stack.push_back(Item{std::move(sub), std::move(sub_ids), item.level + 1,
                           item.prefix * fanout + p});
    }
  }
  return leaf;
}

}  // namespace dynasore::part
