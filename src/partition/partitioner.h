// From-scratch multilevel k-way graph partitioner, standing in for METIS
// (paper §4.1). Pipeline: heavy-edge-matching coarsening, greedy-growing
// initial bisection, Fiduccia-Mattheyses refinement with rollback, recursive
// bisection for k parts.
//
// `HierarchicalPartition` reproduces the paper's "hierarchical METIS":
// partition once per tree level (intermediates, then racks inside each
// intermediate, then servers inside each rack) so that cut edges land on the
// cheapest possible switch tier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/social_graph.h"

namespace dynasore::part {

struct PartitionConfig {
  std::uint32_t num_parts = 2;
  // Maximum part weight relative to perfect balance (1.05 = +5%).
  double imbalance = 1.05;
  std::uint64_t seed = 1;
  std::uint32_t coarsen_target = 256;
  int refine_passes = 6;
  int init_tries = 4;
};

// Returns a part id in [0, num_parts) per user. Directed graphs are
// symmetrized internally.
std::vector<std::uint32_t> PartitionGraph(const graph::SocialGraph& g,
                                          const PartitionConfig& config);

// Number of links crossing parts (undirected view of the graph).
std::uint64_t ComputeEdgeCut(const graph::SocialGraph& g,
                             std::span<const std::uint32_t> parts);

// Recursive per-level partitioning. `fanouts` lists the branching factor of
// each tree level (e.g. {5, 5, 9} for 5 intermediates x 5 racks x 9
// servers). The returned leaf id enumerates leaves depth-first:
// ((l0 * f1) + l1) * f2 + l2 ...
std::vector<std::uint32_t> HierarchicalPartition(
    const graph::SocialGraph& g, std::span<const std::uint32_t> fanouts,
    double imbalance, std::uint64_t seed);

}  // namespace dynasore::part
