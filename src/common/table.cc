#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dynasore::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(std::uint64_t value) {
  return std::to_string(value);
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool WriteCsvFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path);
  if (!file) return false;
  file << contents;
  return static_cast<bool>(file);
}

}  // namespace dynasore::common
