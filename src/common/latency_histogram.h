// Log-bucketed latency histogram for runtime-native latency accounting.
//
// Values (nanoseconds) land in HDR-style buckets: exact below 2^kSubBits,
// then 2^kSubBits sub-buckets per power of two, bounding the relative
// quantile error at 1/2^kSubBits (12.5% with kSubBits = 3) while keeping the
// whole histogram a flat 4 KB array that merges with a vector add.
//
// Thread-safety: single-writer like the rest of common/stats.h. The sharded
// runtime keeps one histogram per shard and combines them after the run with
// Merge — never by sharing one instance across threads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dynasore::common {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  // sub-buckets per octave = 8
  static constexpr std::size_t kNumBuckets = (64 - kSubBits + 1) << kSubBits;

  void Add(std::uint64_t nanos);

  // Folds another histogram into this one (per-shard accumulators merged on
  // demand, like RunningStats::Merge). Exact: bucket counts, count, sum and
  // max all add/combine losslessly.
  void Merge(const LatencyHistogram& other);

  // The samples recorded since `baseline` was snapshotted from this
  // histogram: per-bucket, count, and sum differences (saturating, like
  // ShardStats::DeltaSince, so a stale baseline yields zeros instead of
  // wrapping). The delta's max is approximated from above by the upper edge
  // of its highest non-empty bucket, clamped to the current max — exact
  // whenever the overall maximum sample is part of the delta, and within
  // one bucket width (12.5%) otherwise. This is the per-epoch sampling path
  // the SLO control plane reads at telemetry boundaries.
  LatencyHistogram DeltaSince(const LatencyHistogram& baseline) const;

  // Upper bound of the q-quantile (q in [0, 1]) in nanoseconds; 0 when
  // empty. Error is bounded by the bucket width (<= 12.5% of the value).
  std::uint64_t Percentile(double q) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }

  // Bucket mapping, exposed for tests: BucketOf(v) is the index v lands in,
  // BucketUpper(i) the largest value bucket i holds, BucketLower(i) the
  // smallest — so bucket i covers exactly [BucketLower(i), BucketUpper(i)].
  static std::size_t BucketOf(std::uint64_t v);
  static std::uint64_t BucketUpper(std::size_t i);
  static std::uint64_t BucketLower(std::size_t i);

  // Calls fn(lower_bound_ns, count) for every non-empty bucket in ascending
  // value order — the full-distribution export path (telemetry CSV dumps),
  // as opposed to the fixed percentile set.
  template <typename Fn>
  void VisitBuckets(Fn&& fn) const {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) fn(BucketLower(i), buckets_[i]);
    }
  }

  // CSV of the non-empty buckets: "bucket_lower_ns,count" header plus one
  // row per bucket, ascending. Round-trips exactly: re-Adding each row's
  // lower bound `count` times rebuilds identical bucket counts (a bucket's
  // lower bound maps back into that bucket).
  std::string ToCsv() const;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dynasore::common
