// Deterministic pseudo-random utilities: xoshiro256** generator, alias-table
// weighted sampling, and bounded power-law samplers used by the graph and
// workload generators. Everything is seedable so experiments replay exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dynasore::common {

// SplitMix64, used to expand a single 64-bit seed into generator state.
std::uint64_t SplitMix64(std::uint64_t& state);

// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and good enough for
// simulation workloads; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform in [lo, hi) for 32-bit ranges.
  std::uint32_t NextRange(std::uint32_t lo, std::uint32_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double probability);

  // Standard exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Split off an independent stream (hash of this stream's next output).
  Rng Split();

 private:
  std::uint64_t s_[4];
};

// O(1) sampling from a fixed discrete distribution (Vose alias method).
// Used for degree-weighted user sampling in the workload generators, where
// millions of draws are made from the same weight vector.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights);

  bool empty() const { return prob_.empty(); }
  std::size_t size() const { return prob_.size(); }

  // Draws an index in [0, size()) with probability proportional to its
  // weight. Must not be called on an empty table.
  std::size_t Sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

// Samples integers in [min, max] from a power law p(k) ~ k^-exponent using
// inverse-transform on the continuous approximation. Used for degree and
// community-size draws.
class PowerLawSampler {
 public:
  PowerLawSampler(std::uint32_t min, std::uint32_t max, double exponent);

  std::uint32_t Sample(Rng& rng) const;
  double Mean() const;

 private:
  double min_;
  double max_;
  double exponent_;
};

}  // namespace dynasore::common
