// Console table and CSV output used by the bench binaries to print
// paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace dynasore::common {

// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience for numeric cells.
  static std::string Fmt(double value, int precision = 3);
  static std::string Fmt(std::uint64_t value);

  // Renders to stdout with a separator under the header.
  void Print() const;

  // Renders as CSV (for plotting).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes a CSV file; returns false on I/O failure.
bool WriteCsvFile(const std::string& path, const std::string& contents);

}  // namespace dynasore::common
