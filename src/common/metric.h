// Fixed-schema per-epoch metric time series: the storage layer beneath
// rt::Telemetry's metrics registry.
//
// A MetricSeries is declared once with an ordered list of MetricDefs (the
// schema) and then accumulates one Row per (epoch boundary, shard): the
// epoch index, the boundary's simulated time, the shard id, and one double
// per schema column. Rows are plain values; nothing is derived until export
// (ToCsv) or analysis. Counters carry the *delta for that epoch* (so
// columns sum to run totals and series from different sources merge by
// concatenation); gauges carry a point-in-time level (mergeable but not
// summable).
//
// Thread-safety: none — single-writer, like the rest of common/. The
// runtime's dispatcher appends rows only at quiescent points and snapshots
// the series after the run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynasore::common {

enum class MetricKind : std::uint8_t {
  kCounter,  // per-epoch delta of a monotone count; sums to the run total
  kGauge,    // level sampled at the boundary (depth, backlog, progress)
};

struct MetricDef {
  const char* name = "";  // CSV column header; [a-z0-9_] by convention
  MetricKind kind = MetricKind::kCounter;
  const char* unit = "";  // "ops", "ns", "batches", ... (documentation only)
};

class MetricSeries {
 public:
  struct Row {
    std::uint64_t epoch = 0;      // boundary index within the run
    std::uint64_t epoch_end = 0;  // boundary's simulated time (seconds)
    std::uint32_t shard = 0;
    std::vector<double> values;   // one per schema column, in schema order
  };

  MetricSeries() = default;
  explicit MetricSeries(std::vector<MetricDef> schema)
      : schema_(std::move(schema)) {}

  const std::vector<MetricDef>& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  // Appends one sample row. The row must carry exactly one value per schema
  // column — a mismatch is a caller bug and throws rather than silently
  // shearing columns.
  void Append(Row row) {
    if (row.values.size() != schema_.size()) {
      throw std::invalid_argument(
          "MetricSeries::Append: row value count does not match the schema");
    }
    rows_.push_back(std::move(row));
  }

  // Concatenates another series with the identical schema (same column
  // count, names, and kinds, in order). Counters stay summable because every
  // row is a per-epoch delta; a schema mismatch throws.
  void Merge(const MetricSeries& other) {
    if (other.schema_.size() != schema_.size()) {
      throw std::invalid_argument(
          "MetricSeries::Merge: schemas differ in column count");
    }
    for (std::size_t i = 0; i < schema_.size(); ++i) {
      if (std::string_view(schema_[i].name) !=
              std::string_view(other.schema_[i].name) ||
          schema_[i].kind != other.schema_[i].kind) {
        throw std::invalid_argument(
            "MetricSeries::Merge: schemas differ at column " +
            std::to_string(i));
      }
    }
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  }

  // Sums one counter column over every row — the reconciliation hook
  // (telemetry tests check these sums against RuntimeResult counters).
  // Returns 0 for an unknown column name.
  double ColumnTotal(std::string_view name) const {
    for (std::size_t i = 0; i < schema_.size(); ++i) {
      if (std::string_view(schema_[i].name) != name) continue;
      double total = 0;
      for (const Row& row : rows_) total += row.values[i];
      return total;
    }
    return 0;
  }

  // CSV export: "epoch,epoch_end_s,shard,<schema names...>", one row per
  // Append, values printed with %.17g so counters survive a round trip
  // exactly.
  std::string ToCsv() const {
    std::string csv = "epoch,epoch_end_s,shard";
    for (const MetricDef& def : schema_) {
      csv.append(",").append(def.name);
    }
    csv.append("\n");
    char buf[64];
    for (const Row& row : rows_) {
      csv.append(std::to_string(row.epoch)).append(",");
      csv.append(std::to_string(row.epoch_end)).append(",");
      csv.append(std::to_string(row.shard));
      for (const double v : row.values) {
        std::snprintf(buf, sizeof(buf), ",%.17g", v);
        csv.append(buf);
      }
      csv.append("\n");
    }
    return csv;
  }

 private:
  std::vector<MetricDef> schema_;
  std::vector<Row> rows_;
};

}  // namespace dynasore::common
