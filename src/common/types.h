// Core identifier and request types shared by every DynaSoRe module.
#pragma once

#include <cstdint>
#include <limits>

namespace dynasore {

// Users and views are 1:1 (producer-pivoted views, one per user), so the two
// id spaces coincide; the aliases keep call sites self-describing.
using UserId = std::uint32_t;
using ViewId = std::uint32_t;

using ServerId = std::uint16_t;   // cache server index within the cluster
using BrokerId = std::uint16_t;   // broker index within the cluster
using SwitchId = std::uint16_t;   // switch index within the topology
using RackId = std::uint16_t;     // rack index within the topology

// Simulated wall-clock time in seconds since the start of the run.
using SimTime = std::uint64_t;

inline constexpr ServerId kInvalidServer =
    std::numeric_limits<ServerId>::max();
inline constexpr BrokerId kInvalidBroker =
    std::numeric_limits<BrokerId>::max();
inline constexpr ViewId kInvalidView = std::numeric_limits<ViewId>::max();

inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;

enum class OpType : std::uint8_t { kRead, kWrite };

// One entry of a request log: at `time`, `user` issues a read (of all her
// connections' views) or a write (to her own view).
struct Request {
  SimTime time = 0;
  UserId user = 0;
  OpType op = OpType::kRead;
};

}  // namespace dynasore
