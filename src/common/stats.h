// Small statistics helpers used by generators, experiments and tests.
//
// Thread-safety: all classes here are single-writer and unsynchronized.
// Concurrent code (the sharded runtime) keeps one accumulator per shard and
// combines them after the run with RunningStats::Merge — never by sharing
// one instance across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dynasore::common {

// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);

  // Folds another accumulator into this one (parallel-merge form of
  // Welford; Chan et al.). Exact for count/mean/min/max/sum, numerically
  // stable for the variance. Lets per-shard accumulators merge on demand.
  void Merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Returns the q-quantile (0 <= q <= 1) of `values` (copies and sorts).
double Quantile(std::span<const double> values, double q);

// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dynasore::common
