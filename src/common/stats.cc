#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dynasore::common {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::span<const double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(buckets > 0);
  assert(hi > lo);
}

void Histogram::Add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace dynasore::common
