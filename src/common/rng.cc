#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dynasore::common {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = SplitMix64(state);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method keeps the draw unbiased.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint32_t Rng::NextRange(std::uint32_t lo, std::uint32_t hi) {
  assert(lo < hi);
  return lo + static_cast<std::uint32_t>(NextBounded(hi - lo));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability) {
  return NextDouble() < probability;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  double u = NextDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xA02BDBF7BB3C0A7ULL); }

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (total <= 0) {
    // Degenerate all-zero weights: fall back to uniform.
    for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);
    return;
  }
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t AliasTable::Sample(Rng& rng) const {
  assert(!prob_.empty());
  const std::size_t column = static_cast<std::size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

PowerLawSampler::PowerLawSampler(std::uint32_t min, std::uint32_t max,
                                 double exponent)
    : min_(static_cast<double>(min)),
      max_(static_cast<double>(max)),
      exponent_(exponent) {
  assert(min >= 1);
  assert(max >= min);
  assert(exponent > 1.0);
}

std::uint32_t PowerLawSampler::Sample(Rng& rng) const {
  // Inverse transform of the continuous power law truncated to [min, max].
  const double a = 1.0 - exponent_;
  const double lo = std::pow(min_, a);
  const double hi = std::pow(max_ + 1.0, a);
  const double u = rng.NextDouble();
  const double x = std::pow(lo + u * (hi - lo), 1.0 / a);
  auto value = static_cast<std::uint32_t>(x);
  if (value < static_cast<std::uint32_t>(min_)) value = static_cast<std::uint32_t>(min_);
  if (value > static_cast<std::uint32_t>(max_)) value = static_cast<std::uint32_t>(max_);
  return value;
}

double PowerLawSampler::Mean() const {
  // Mean of the continuous truncated power law; close enough for sizing.
  const double a = 1.0 - exponent_;
  const double b = 2.0 - exponent_;
  const double num = (std::pow(max_ + 1.0, b) - std::pow(min_, b)) / b;
  const double den = (std::pow(max_ + 1.0, a) - std::pow(min_, a)) / a;
  return num / den;
}

}  // namespace dynasore::common
