#include "common/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dynasore::common {

std::size_t LatencyHistogram::BucketOf(std::uint64_t v) {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (v < kSub) return static_cast<std::size_t>(v);
  const int exp = std::bit_width(v) - 1;  // 2^exp <= v < 2^(exp+1)
  const std::uint64_t sub = (v >> (exp - kSubBits)) & (kSub - 1);
  return ((static_cast<std::size_t>(exp) - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::BucketUpper(std::size_t i) {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (i < kSub) return i;
  const int exp = static_cast<int>(i >> kSubBits) + kSubBits - 1;
  if (exp >= 63) return ~std::uint64_t{0};  // ~292 years in ns; unreachable
  const std::uint64_t sub = i & (kSub - 1);
  return ((kSub + sub + 1) << (exp - kSubBits)) - 1;
}

std::uint64_t LatencyHistogram::BucketLower(std::size_t i) {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (i < kSub) return i;
  const int exp = static_cast<int>(i >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = i & (kSub - 1);
  return (kSub + sub) << (exp - kSubBits);
}

std::string LatencyHistogram::ToCsv() const {
  std::string csv = "bucket_lower_ns,count\n";
  VisitBuckets([&](std::uint64_t lower, std::uint64_t count) {
    csv.append(std::to_string(lower))
        .append(",")
        .append(std::to_string(count))
        .append("\n");
  });
  return csv;
}

void LatencyHistogram::Add(std::uint64_t nanos) {
  ++buckets_[BucketOf(nanos)];
  ++count_;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

LatencyHistogram LatencyHistogram::DeltaSince(
    const LatencyHistogram& baseline) const {
  LatencyHistogram delta;
  std::size_t highest = kNumBuckets;  // sentinel: no non-empty bucket
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t cur = buckets_[i];
    const std::uint64_t base = baseline.buckets_[i];
    delta.buckets_[i] = cur > base ? cur - base : 0;
    if (delta.buckets_[i] != 0) highest = i;
  }
  delta.count_ = count_ > baseline.count_ ? count_ - baseline.count_ : 0;
  delta.sum_ = sum_ > baseline.sum_ ? sum_ - baseline.sum_ : 0;
  delta.max_ = highest == kNumBuckets ? 0 : std::min(BucketUpper(highest), max_);
  return delta;
}

std::uint64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) return std::min(BucketUpper(i), max_);
  }
  return max_;
}

}  // namespace dynasore::common
