// Rotating (sliding-window) access counter, §3.2 of the paper: "We use
// rotating counters to record the number of accesses to views. Each counter
// is associated to a time period, and servers start updating the following
// counter at the end of the period." The default configuration matches the
// evaluation setup: 24 slots shifted every hour.
//
// Thread-safety: single-writer. The counter is deliberately unsynchronized
// — in the sharded runtime every RotatingCounter lives inside one shard's
// engine, whose worker thread is its only reader and writer (cross-shard
// effects arrive through mailboxes already serialized onto that thread).
// Do not share an instance across threads without external synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dynasore::common {

class RotatingCounter {
 public:
  static constexpr int kMaxSlots = 24;

  explicit RotatingCounter(std::uint8_t num_slots = kMaxSlots)
      : num_slots_(num_slots == 0 ? 1 : num_slots) {}

  // Records `n` accesses in the current slot. Saturates at the slot width
  // (the paper stores one byte per slot and discusses compression; we keep
  // 16-bit slots and saturate, which is lossless for realistic rates).
  void Add(std::uint32_t n = 1) {
    const std::uint32_t room = 0xFFFFu - slots_[head_];
    const auto inc = static_cast<std::uint16_t>(n < room ? n : room);
    slots_[head_] = static_cast<std::uint16_t>(slots_[head_] + inc);
    sum_ += inc;
  }

  // Advances to the next slot, forgetting the oldest period.
  void Rotate() {
    head_ = static_cast<std::uint8_t>((head_ + 1) % num_slots_);
    sum_ -= slots_[head_];
    slots_[head_] = 0;
  }

  // Total accesses over the whole window.
  std::uint32_t Total() const { return sum_; }

  // Accesses recorded in the current (most recent, partial) slot.
  std::uint16_t Current() const { return slots_[head_]; }

  std::uint8_t num_slots() const { return num_slots_; }

  bool IsZero() const { return sum_ == 0; }

  void Clear() {
    slots_.fill(0);
    sum_ = 0;
    head_ = 0;
  }

  // Merges another counter's window into this one (used when a replica
  // migrates and its statistics travel with it). Slot alignment is
  // approximate across servers, so the merge folds into the current slot.
  void Merge(const RotatingCounter& other) { Add(other.Total()); }

 private:
  std::array<std::uint16_t, kMaxSlots> slots_{};
  std::uint32_t sum_ = 0;
  std::uint8_t head_ = 0;
  std::uint8_t num_slots_;
};

}  // namespace dynasore::common
