// Memory-bounded SPAR (Pujol et al., SIGCOMM'10), adapted per the paper's
// §4.1: views of a user's social connections are replicated onto her
// master's server "as long as storage is available".
//
// The implementation follows SPAR's online edge heuristic: for every new
// link it evaluates three configurations — (a) keep both masters and create
// the missing co-location replicas, (b) move u's master next to v, (c) move
// v's master next to u — and keeps the one that minimizes the total number
// of replicas, subject to master load balance and server capacity. Replicas
// whose last requirement disappears are garbage-collected.
#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "placement/placement.h"

namespace dynasore::place {

namespace {

using common::Rng;

// Sorted (server, count) requirement table of one view: how many processed
// social links (plus the master copy itself) require the view on a server.
class ReqTable {
 public:
  void Inc(ServerId s) {
    auto it = Find(s);
    if (it != entries_.end() && it->first == s) {
      ++it->second;
    } else {
      entries_.insert(it, {s, 1});
    }
  }

  // Returns the count after decrementing.
  std::uint32_t Dec(ServerId s) {
    auto it = Find(s);
    assert(it != entries_.end() && it->first == s && it->second > 0);
    if (--it->second == 0) {
      entries_.erase(it);
      return 0;
    }
    return it->second;
  }

  std::uint32_t Get(ServerId s) const {
    auto it = const_cast<ReqTable*>(this)->Find(s);
    return it != entries_.end() && it->first == s ? it->second : 0;
  }

 private:
  std::vector<std::pair<ServerId, std::uint32_t>>::iterator Find(ServerId s) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), s,
        [](const auto& entry, ServerId key) { return entry.first < key; });
  }

  std::vector<std::pair<ServerId, std::uint32_t>> entries_;
};

class SparBuilder {
 public:
  SparBuilder(const graph::SocialGraph& g, const net::Topology& topo,
              std::uint32_t capacity, const SparConfig& config)
      : g_(g),
        capacity_(capacity),
        num_servers_(topo.num_servers()),
        rng_(config.seed) {
    const std::uint32_t n = g.num_users();
    master_.assign(n, kInvalidServer);
    replicas_.resize(n);
    req_.resize(n);
    processed_out_.resize(n);
    load_.assign(num_servers_, 0);
    masters_on_.assign(num_servers_, 0);
    max_masters_ = static_cast<std::uint32_t>(
        std::max(1.0, (static_cast<double>(n) / num_servers_) *
                          config.master_balance_slack + 1.0));
  }

  PlacementResult Build();

 private:
  bool HasReplica(UserId v, ServerId s) const {
    return std::binary_search(replicas_[v].begin(), replicas_[v].end(), s);
  }

  void AddReplica(UserId v, ServerId s) {
    auto& r = replicas_[v];
    const auto it = std::lower_bound(r.begin(), r.end(), s);
    assert(it == r.end() || *it != s);
    r.insert(it, s);
    ++load_[s];
  }

  void RemoveReplica(UserId v, ServerId s) {
    auto& r = replicas_[v];
    const auto it = std::lower_bound(r.begin(), r.end(), s);
    assert(it != r.end() && *it == s);
    r.erase(it);
    --load_[s];
  }

  bool HasSpace(ServerId s) const { return load_[s] < capacity_; }

  // Creates a replica if the requirement is unmet and space allows.
  void EnsureReplica(UserId v, ServerId s) {
    if (!HasReplica(v, s) && HasSpace(s)) AddReplica(v, s);
  }

  // Replica-count delta of moving `u`'s master to `target` (negative is
  // good). Returns a large value if the move is infeasible.
  int EvaluateMove(UserId u, ServerId target) const;
  void ExecuteMove(UserId u, ServerId target);

  void ProcessLink(UserId u, UserId v);

  const graph::SocialGraph& g_;
  std::uint32_t capacity_;
  std::uint16_t num_servers_;
  Rng rng_;

  std::vector<ServerId> master_;
  std::vector<std::vector<ServerId>> replicas_;  // sorted per view
  std::vector<ReqTable> req_;
  // Followees of u whose link has already been streamed (requirements
  // already registered).
  std::vector<std::vector<UserId>> processed_out_;
  std::vector<std::uint32_t> load_;
  std::vector<std::uint32_t> masters_on_;
  std::uint32_t max_masters_ = 0;
};

int SparBuilder::EvaluateMove(UserId u, ServerId target) const {
  constexpr int kInfeasible = 1 << 20;
  const ServerId from = master_[u];
  if (target == from) return kInfeasible;
  if (masters_on_[target] >= max_masters_) return kInfeasible;
  // The master copy itself must fit on the target.
  if (!HasReplica(u, target) && !HasSpace(target)) return kInfeasible;

  int delta = 0;
  // u's own view: a copy appears on the target (unless already there) and
  // the origin copy disappears if nothing else requires it.
  if (!HasReplica(u, target)) ++delta;
  if (req_[u].Get(from) == 1) --delta;  // only the master requirement is left

  // u's processed followees must be co-located at the target; their copies
  // at `from` free up if u carried the only requirement.
  for (UserId w : processed_out_[u]) {
    if (!HasReplica(w, target)) ++delta;
    if (req_[w].Get(from) == 1 && HasReplica(w, from)) --delta;
  }
  return delta;
}

void SparBuilder::ExecuteMove(UserId u, ServerId target) {
  const ServerId from = master_[u];

  // Move the master copy.
  EnsureReplica(u, target);
  --masters_on_[from];
  ++masters_on_[target];
  master_[u] = target;
  // Requirement bookkeeping for u's own view: the master-copy requirement
  // transfers between servers.
  req_[u].Inc(target);
  if (req_[u].Dec(from) == 0 && HasReplica(u, from)) RemoveReplica(u, from);

  // Requirements created by u's processed links transfer with the master.
  for (UserId w : processed_out_[u]) {
    req_[w].Inc(target);
    EnsureReplica(w, target);
    if (req_[w].Dec(from) == 0 && HasReplica(w, from)) RemoveReplica(w, from);
  }
}

void SparBuilder::ProcessLink(UserId u, UserId v) {
  processed_out_[u].push_back(v);
  req_[v].Inc(master_[u]);

  const int keep = HasReplica(v, master_[u]) ? 0 : 1;
  const int move_u = EvaluateMove(u, master_[v]);
  const int move_v = EvaluateMove(v, master_[u]);

  if (move_u < keep && move_u <= move_v) {
    ExecuteMove(u, master_[v]);
  } else if (move_v < keep) {
    ExecuteMove(v, master_[u]);
  }
  // Satisfy the new requirement in the final configuration, space allowing
  // (the paper's memory-bounded adaptation skips creation on full servers).
  EnsureReplica(v, master_[u]);
}

PlacementResult SparBuilder::Build() {
  const std::uint32_t n = g_.num_users();

  // Phase 1 (paper §4.4): one master replica per user, load-balanced.
  std::vector<UserId> user_order(n);
  std::iota(user_order.begin(), user_order.end(), 0);
  rng_.Shuffle(user_order);
  for (UserId u : user_order) {
    ServerId best = 0;
    for (ServerId s = 1; s < num_servers_; ++s) {
      if (masters_on_[s] < masters_on_[best]) best = s;
    }
    master_[u] = best;
    ++masters_on_[best];
    AddReplica(u, best);
    req_[u].Inc(best);
  }

  // Phase 2: stream every social link in random order.
  std::vector<std::pair<UserId, UserId>> links;
  links.reserve(g_.num_links());
  for (UserId u = 0; u < n; ++u) {
    for (UserId v : g_.Followees(u)) {
      if (g_.directed() || u < v) links.emplace_back(u, v);
    }
  }
  rng_.Shuffle(links);
  for (const auto& [u, v] : links) {
    ProcessLink(u, v);
    // Undirected friendships require co-location both ways.
    if (!g_.directed()) ProcessLink(v, u);
  }

  PlacementResult result;
  result.replicas = std::move(replicas_);
  result.master = std::move(master_);
  return result;
}

}  // namespace

PlacementResult SparPlacement(const graph::SocialGraph& g,
                              const net::Topology& topo,
                              std::uint32_t capacity_per_server,
                              const SparConfig& config) {
  assert(static_cast<std::uint64_t>(capacity_per_server) * topo.num_servers() >=
         g.num_users());
  SparBuilder builder(g, topo, capacity_per_server, config);
  return builder.Build();
}

}  // namespace dynasore::place
