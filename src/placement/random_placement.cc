#include <cassert>
#include <numeric>

#include "common/rng.h"
#include "placement/placement.h"

namespace dynasore::place {

std::uint64_t PlacementResult::TotalReplicas() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas) total += r.size();
  return total;
}

std::vector<std::uint32_t> PlacementResult::ServerLoads(
    std::uint16_t num_servers) const {
  std::vector<std::uint32_t> loads(num_servers, 0);
  for (const auto& r : replicas) {
    for (ServerId s : r) ++loads[s];
  }
  return loads;
}

PlacementResult RandomPlacement(std::uint32_t num_views,
                                const net::Topology& topo,
                                std::uint32_t capacity_per_server,
                                std::uint64_t seed) {
  assert(static_cast<std::uint64_t>(capacity_per_server) * topo.num_servers() >=
         num_views);
  common::Rng rng(seed);
  PlacementResult result;
  result.replicas.resize(num_views);
  result.master.resize(num_views);
  std::vector<std::uint32_t> load(topo.num_servers(), 0);
  for (ViewId v = 0; v < num_views; ++v) {
    ServerId s = 0;
    do {
      s = static_cast<ServerId>(rng.NextBounded(topo.num_servers()));
    } while (load[s] >= capacity_per_server);
    ++load[s];
    result.replicas[v] = {s};
    result.master[v] = s;
  }
  return result;
}

}  // namespace dynasore::place
