// Initial view-to-server assignments (paper §4.1 baselines and §4.4 initial
// placements for DynaSoRe): Random, METIS-style partitioning, hierarchical
// partitioning, and SPAR.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/social_graph.h"
#include "net/topology.h"

namespace dynasore::place {

struct PlacementResult {
  // Per view: sorted list of servers holding a replica (at least one each).
  std::vector<std::vector<ServerId>> replicas;
  // Per view: the "home" replica; the user's proxies start on the broker of
  // this server's rack.
  std::vector<ServerId> master;

  std::uint64_t TotalReplicas() const;
  // Number of views stored on each server.
  std::vector<std::uint32_t> ServerLoads(std::uint16_t num_servers) const;
};

// Hash-style random assignment (memcached/Redis baseline): each view lands
// on a uniformly random non-full server; no replication.
PlacementResult RandomPlacement(std::uint32_t num_views,
                                const net::Topology& topo,
                                std::uint32_t capacity_per_server,
                                std::uint64_t seed);

// Graph partitioning into one part per server. `hierarchical` re-partitions
// per tree level (intermediates -> racks -> servers), the paper's hMETIS;
// otherwise parts are mapped to servers uniformly at random (plain METIS).
// Views exceeding a server's capacity spill to the nearest non-full server.
PlacementResult PartitionPlacement(const graph::SocialGraph& g,
                                   const net::Topology& topo,
                                   std::uint32_t capacity_per_server,
                                   std::uint64_t seed, bool hierarchical);

struct SparConfig {
  std::uint64_t seed = 1;
  // Masters per server may exceed perfect balance by this factor.
  double master_balance_slack = 1.10;
};

// Memory-bounded SPAR (paper §4.1): masters are load-balanced; for every
// social link the endpoints' views are co-located on each other's master
// server via replicas, created only while the target server has space. Edge
// insertions evaluate SPAR's three configurations (replicate, move u, move
// v) and keep the one minimizing total replicas.
PlacementResult SparPlacement(const graph::SocialGraph& g,
                              const net::Topology& topo,
                              std::uint32_t capacity_per_server,
                              const SparConfig& config);

}  // namespace dynasore::place
