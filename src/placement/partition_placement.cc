#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.h"
#include "partition/partitioner.h"
#include "placement/placement.h"

namespace dynasore::place {

namespace {

// Moves views from over-capacity servers to the closest server with room
// (same rack, then same intermediate, then anywhere). Partition imbalance is
// a few percent, so spilling affects a small tail of views.
void SpillOverflow(PlacementResult& result, const net::Topology& topo,
                   std::uint32_t capacity) {
  std::vector<std::uint32_t> load = result.ServerLoads(topo.num_servers());
  auto find_target = [&](ServerId from) -> ServerId {
    ServerId best = kInvalidServer;
    int best_distance = 1 << 20;
    for (ServerId s = 0; s < topo.num_servers(); ++s) {
      if (s == from || load[s] >= capacity) continue;
      const int d = topo.ServerDistance(from, s);
      // Prefer closer targets; ties break toward the emptier server so the
      // spill does not concentrate.
      if (d < best_distance ||
          (d == best_distance && best != kInvalidServer &&
           load[s] < load[best])) {
        best_distance = d;
        best = s;
      }
    }
    return best;
  };
  for (ViewId v = 0; v < result.replicas.size(); ++v) {
    const ServerId s = result.master[v];
    if (load[s] <= capacity) continue;
    const ServerId target = find_target(s);
    assert(target != kInvalidServer && "total capacity must fit all views");
    --load[s];
    ++load[target];
    result.replicas[v] = {target};
    result.master[v] = target;
  }
}

}  // namespace

PlacementResult PartitionPlacement(const graph::SocialGraph& g,
                                   const net::Topology& topo,
                                   std::uint32_t capacity_per_server,
                                   std::uint64_t seed, bool hierarchical) {
  const std::uint32_t num_views = g.num_users();
  assert(static_cast<std::uint64_t>(capacity_per_server) * topo.num_servers() >=
         num_views);

  std::vector<std::uint32_t> part_of_user;
  std::vector<ServerId> part_to_server(topo.num_servers());
  if (hierarchical && !topo.is_flat()) {
    const std::array<std::uint32_t, 3> fanouts{
        topo.num_intermediates(), topo.racks_per_intermediate(),
        topo.servers_per_rack()};
    part_of_user =
        part::HierarchicalPartition(g, fanouts, /*imbalance=*/1.06, seed);
    // Leaves enumerate servers depth-first, exactly the server id layout.
    std::iota(part_to_server.begin(), part_to_server.end(), 0);
  } else {
    part::PartitionConfig config;
    config.num_parts = topo.num_servers();
    config.imbalance = 1.06;
    config.seed = seed;
    part_of_user = part::PartitionGraph(g, config);
    // Plain METIS ignores the data-center hierarchy: parts land on servers
    // in random order (paper §4.1).
    std::iota(part_to_server.begin(), part_to_server.end(), 0);
    common::Rng rng(seed ^ 0x5DEECE66DULL);
    rng.Shuffle(part_to_server);
  }

  PlacementResult result;
  result.replicas.resize(num_views);
  result.master.resize(num_views);
  for (UserId u = 0; u < num_views; ++u) {
    const ServerId s = part_to_server[part_of_user[u]];
    result.replicas[u] = {s};
    result.master[u] = s;
  }
  SpillOverflow(result, topo, capacity_per_server);
  return result;
}

}  // namespace dynasore::place
