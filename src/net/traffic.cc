#include "net/traffic.h"

#include <cassert>

namespace dynasore::net {

TrafficRecorder::TrafficRecorder(const Topology& topo,
                                 const TrafficConfig& config)
    : topo_(&topo), config_(config) {
  assert(config_.bucket_seconds > 0);
  for (auto& t : totals_) t.assign(topo.num_switches(), 0);
}

void TrafficRecorder::Record(const SwitchPath& path, std::uint32_t size,
                             MsgClass cls, SimTime t) {
  const auto c = static_cast<std::size_t>(cls);
  const std::size_t bucket = static_cast<std::size_t>(t / config_.bucket_seconds);
  if (bucket >= num_buckets_) num_buckets_ = bucket + 1;
  for (int i = 0; i < path.count; ++i) {
    const SwitchId sw = path.hops[i];
    totals_[c][sw] += size;
    auto& series = series_[c][static_cast<std::size_t>(topo_->tier_of_switch(sw))];
    if (series.size() <= bucket) series.resize(bucket + 1, 0);
    series[bucket] += size;
  }
}

std::uint64_t TrafficRecorder::SwitchTotal(SwitchId sw, MsgClass cls) const {
  return totals_[static_cast<std::size_t>(cls)][sw];
}

std::uint64_t TrafficRecorder::TierTotal(Tier tier, MsgClass cls) const {
  std::uint64_t sum = 0;
  const auto& totals = totals_[static_cast<std::size_t>(cls)];
  for (SwitchId sw = 0; sw < topo_->num_switches(); ++sw) {
    if (topo_->tier_of_switch(sw) == tier) sum += totals[sw];
  }
  return sum;
}

double TrafficRecorder::TierAverage(Tier tier, MsgClass cls) const {
  const std::uint32_t count = SwitchesInTier(tier);
  return count == 0 ? 0.0
                    : static_cast<double>(TierTotal(tier, cls)) / count;
}

std::uint32_t TrafficRecorder::SwitchesInTier(Tier tier) const {
  if (topo_->is_flat()) return tier == Tier::kTop ? 1 : 0;
  switch (tier) {
    case Tier::kTop:
      return 1;
    case Tier::kIntermediate:
      return topo_->num_intermediates();
    case Tier::kRack:
      return topo_->num_racks();
  }
  return 0;
}

const std::vector<std::uint64_t>& TrafficRecorder::Series(Tier tier,
                                                          MsgClass cls) const {
  return series_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(tier)];
}

std::uint64_t TrafficRecorder::SeriesRange(Tier tier, MsgClass cls,
                                           std::size_t from,
                                           std::size_t to) const {
  const auto& series = Series(tier, cls);
  std::uint64_t sum = 0;
  for (std::size_t i = from; i < to && i < series.size(); ++i) sum += series[i];
  return sum;
}

void TrafficRecorder::Reset() {
  for (auto& t : totals_) t.assign(topo_->num_switches(), 0);
  for (auto& per_class : series_) {
    for (auto& series : per_class) series.clear();
  }
  num_buckets_ = 0;
}

}  // namespace dynasore::net
