#include "net/topology.h"

#include <cassert>

namespace dynasore::net {

Topology Topology::MakeTree(const TreeConfig& config) {
  assert(config.intermediates >= 1);
  assert(config.racks_per_intermediate >= 1);
  assert(config.machines_per_rack >= 2);
  Topology t;
  t.flat_ = false;
  t.intermediates_ = config.intermediates;
  t.racks_per_int_ = config.racks_per_intermediate;
  t.servers_per_rack_ = static_cast<std::uint16_t>(config.machines_per_rack - 1);
  t.num_racks_ = static_cast<std::uint16_t>(config.intermediates *
                                            config.racks_per_intermediate);
  t.num_servers_ = static_cast<std::uint16_t>(t.num_racks_ * t.servers_per_rack_);
  t.num_brokers_ = t.num_racks_;
  t.num_switches_ = static_cast<std::uint16_t>(1 + t.intermediates_ + t.num_racks_);
  return t;
}

Topology Topology::MakeFlat(std::uint16_t machines) {
  assert(machines >= 2);
  Topology t;
  t.flat_ = true;
  t.intermediates_ = 0;
  t.racks_per_int_ = 0;
  t.servers_per_rack_ = 1;  // each machine is its own "rack"
  t.num_racks_ = machines;
  t.num_servers_ = machines;
  t.num_brokers_ = machines;
  t.num_switches_ = 1;
  return t;
}

RackId Topology::rack_of_server(ServerId s) const {
  assert(s < num_servers_);
  return flat_ ? s : static_cast<RackId>(s / servers_per_rack_);
}

RackId Topology::rack_of_broker(BrokerId b) const {
  assert(b < num_brokers_);
  return b;  // one broker per rack; in flat mode machine == rack
}

std::uint16_t Topology::intermediate_of_rack(RackId r) const {
  assert(r < num_racks_);
  return flat_ ? 0 : static_cast<std::uint16_t>(r / racks_per_int_);
}

std::uint16_t Topology::intermediate_of_server(ServerId s) const {
  return intermediate_of_rack(rack_of_server(s));
}

BrokerId Topology::broker_of_rack(RackId r) const {
  assert(r < num_racks_);
  return r;
}

ServerId Topology::rack_server_begin(RackId r) const {
  return flat_ ? r : static_cast<ServerId>(r * servers_per_rack_);
}

ServerId Topology::rack_server_end(RackId r) const {
  return flat_ ? static_cast<ServerId>(r + 1)
               : static_cast<ServerId>((r + 1) * servers_per_rack_);
}

Tier Topology::tier_of_switch(SwitchId sw) const {
  assert(sw < num_switches_);
  if (sw == 0) return Tier::kTop;
  return sw <= intermediates_ ? Tier::kIntermediate : Tier::kRack;
}

SwitchId Topology::intermediate_switch(std::uint16_t i) const {
  assert(!flat_ && i < intermediates_);
  return static_cast<SwitchId>(1 + i);
}

SwitchId Topology::rack_switch(RackId r) const {
  assert(!flat_ && r < num_racks_);
  return static_cast<SwitchId>(1 + intermediates_ + r);
}

int Topology::Distance(BrokerId b, ServerId s) const {
  if (flat_) return b == s ? 0 : 1;
  const RackId rb = rack_of_broker(b);
  const RackId rs = rack_of_server(s);
  if (rb == rs) return 1;
  return intermediate_of_rack(rb) == intermediate_of_rack(rs) ? 3 : 5;
}

int Topology::ServerDistance(ServerId a, ServerId b) const {
  if (a == b) return 0;
  if (flat_) return 1;
  const RackId ra = rack_of_server(a);
  const RackId rb = rack_of_server(b);
  if (ra == rb) return 1;
  return intermediate_of_rack(ra) == intermediate_of_rack(rb) ? 3 : 5;
}

namespace {
// Builds the path between two racks of a tree topology.
SwitchPath TreeRackPath(const Topology& t, RackId ra, RackId rb) {
  SwitchPath path;
  if (ra == rb) {
    path.hops[path.count++] = t.rack_switch(ra);
    return path;
  }
  const std::uint16_t ia = t.intermediate_of_rack(ra);
  const std::uint16_t ib = t.intermediate_of_rack(rb);
  path.hops[path.count++] = t.rack_switch(ra);
  path.hops[path.count++] = t.intermediate_switch(ia);
  if (ia != ib) {
    path.hops[path.count++] = t.top_switch();
    path.hops[path.count++] = t.intermediate_switch(ib);
  }
  path.hops[path.count++] = t.rack_switch(rb);
  return path;
}
}  // namespace

SwitchPath Topology::PathBrokerServer(BrokerId b, ServerId s) const {
  if (flat_) {
    SwitchPath path;
    if (b != s) path.hops[path.count++] = 0;
    return path;
  }
  return TreeRackPath(*this, rack_of_broker(b), rack_of_server(s));
}

SwitchPath Topology::PathBrokerBroker(BrokerId a, BrokerId b) const {
  if (flat_) {
    SwitchPath path;
    if (a != b) path.hops[path.count++] = 0;
    return path;
  }
  if (a == b) return SwitchPath{};  // same machine, no switch traversed
  return TreeRackPath(*this, rack_of_broker(a), rack_of_broker(b));
}

SwitchPath Topology::PathServerServer(ServerId a, ServerId b) const {
  if (flat_) {
    SwitchPath path;
    if (a != b) path.hops[path.count++] = 0;
    return path;
  }
  if (a == b) return SwitchPath{};
  return TreeRackPath(*this, rack_of_server(a), rack_of_server(b));
}

std::uint16_t Topology::NumOrigins(ServerId /*s*/, bool exact) const {
  if (flat_) return num_racks_;  // one origin per machine
  if (exact) return num_racks_;
  return static_cast<std::uint16_t>(racks_per_int_ + intermediates_ - 1);
}

std::uint16_t Topology::OriginIndex(ServerId server, RackId broker_rack,
                                    bool exact) const {
  if (flat_ || exact) return broker_rack;
  const std::uint16_t si = intermediate_of_server(server);
  const std::uint16_t bi = intermediate_of_rack(broker_rack);
  if (si == bi) {
    return static_cast<std::uint16_t>(broker_rack % racks_per_int_);
  }
  const std::uint16_t slot = bi < si ? bi : static_cast<std::uint16_t>(bi - 1);
  return static_cast<std::uint16_t>(racks_per_int_ + slot);
}

int Topology::OriginCost(ServerId server, std::uint16_t origin,
                         ServerId target, bool exact) const {
  if (flat_) return origin == target ? 0 : 1;  // origin is a machine id
  if (exact) return RackToServerCost(origin, target);
  const std::uint16_t si = intermediate_of_server(server);
  if (origin < racks_per_int_) {
    const RackId rack = static_cast<RackId>(si * racks_per_int_ + origin);
    return RackToServerCost(rack, target);
  }
  // Aggregated sibling-intermediate origin: decode which intermediate.
  std::uint16_t slot = static_cast<std::uint16_t>(origin - racks_per_int_);
  const std::uint16_t oi = slot < si ? slot : static_cast<std::uint16_t>(slot + 1);
  // The exact rack inside `oi` is unknown: estimate 3 switches within that
  // sub-tree, 5 from outside it.
  return intermediate_of_server(target) == oi ? 3 : 5;
}

int Topology::RackToServerCost(RackId rack, ServerId s) const {
  if (flat_) return rack == s ? 0 : 1;
  const RackId rs = rack_of_server(s);
  if (rack == rs) return 1;
  return intermediate_of_rack(rack) == intermediate_of_rack(rs) ? 3 : 5;
}

void Topology::ServersInOrigin(ServerId server, std::uint16_t origin,
                               std::vector<ServerId>& out, bool exact) const {
  const auto [lo, hi] = OriginRackRange(server, origin, exact);
  for (RackId r = lo; r < hi; ++r) {
    for (ServerId s = rack_server_begin(r); s < rack_server_end(r); ++s) {
      out.push_back(s);
    }
  }
}

std::pair<RackId, RackId> Topology::OriginRackRange(ServerId server,
                                                    std::uint16_t origin,
                                                    bool exact) const {
  if (flat_ || exact) {
    return {origin, static_cast<RackId>(origin + 1)};
  }
  const std::uint16_t si = intermediate_of_server(server);
  if (origin < racks_per_int_) {
    const RackId rack = static_cast<RackId>(si * racks_per_int_ + origin);
    return {rack, static_cast<RackId>(rack + 1)};
  }
  std::uint16_t slot = static_cast<std::uint16_t>(origin - racks_per_int_);
  const std::uint16_t oi = slot < si ? slot : static_cast<std::uint16_t>(slot + 1);
  const RackId first = static_cast<RackId>(oi * racks_per_int_);
  return {first, static_cast<RackId>(first + racks_per_int_)};
}

}  // namespace dynasore::net
