// Data-center network model (paper §2.1, Fig 1).
//
// Tree mode: a core (top) switch connects `intermediates` intermediate
// switches; each connects `racks_per_intermediate` rack switches; each rack
// holds `machines_per_rack` machines of which one is a broker and the rest
// are cache servers. Network distance between two machines is the number of
// switches on the path (same rack: 1, same intermediate: 3, otherwise 5).
//
// Flat mode (paper §4.5): all machines hang off one switch and every machine
// is simultaneously a broker and a cache server (distance 0 to itself,
// 1 otherwise).
//
// The topology also defines the *origin* coarsening of §3.2: a server tracks
// read origins per rack of its own intermediate sub-tree, and one aggregated
// origin per sibling intermediate switch (n + m - 1 origins instead of
// n * m). An `exact` mode (one origin per rack, used as an ablation) is also
// provided.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace dynasore::net {

struct TreeConfig {
  std::uint16_t intermediates = 5;
  std::uint16_t racks_per_intermediate = 5;
  std::uint16_t machines_per_rack = 10;  // 1 broker + (machines-1) servers
};

enum class Tier : std::uint8_t { kTop = 0, kIntermediate = 1, kRack = 2 };
inline constexpr int kNumTiers = 3;

// A path holds at most 5 switches (rack, intermediate, top, intermediate,
// rack).
struct SwitchPath {
  std::array<SwitchId, 5> hops{};
  int count = 0;

  std::span<const SwitchId> span() const { return {hops.data(), static_cast<std::size_t>(count)}; }
};

class Topology {
 public:
  static Topology MakeTree(const TreeConfig& config);
  static Topology MakeFlat(std::uint16_t machines);

  bool is_flat() const { return flat_; }
  std::uint16_t num_servers() const { return num_servers_; }
  std::uint16_t num_brokers() const { return num_brokers_; }
  std::uint16_t num_racks() const { return num_racks_; }
  std::uint16_t num_intermediates() const { return intermediates_; }
  std::uint16_t racks_per_intermediate() const { return racks_per_int_; }
  std::uint16_t servers_per_rack() const { return servers_per_rack_; }
  std::uint16_t num_switches() const { return num_switches_; }

  RackId rack_of_server(ServerId s) const;
  RackId rack_of_broker(BrokerId b) const;
  std::uint16_t intermediate_of_rack(RackId r) const;
  std::uint16_t intermediate_of_server(ServerId s) const;
  BrokerId broker_of_rack(RackId r) const;

  // Servers hosted by rack `r` as a contiguous id range [first, last).
  ServerId rack_server_begin(RackId r) const;
  ServerId rack_server_end(RackId r) const;

  Tier tier_of_switch(SwitchId sw) const;
  SwitchId top_switch() const { return 0; }
  SwitchId intermediate_switch(std::uint16_t i) const;
  SwitchId rack_switch(RackId r) const;

  // Network distance (number of switches traversed) between a broker and a
  // server. In flat mode broker b and server b are the same machine.
  int Distance(BrokerId b, ServerId s) const;
  int ServerDistance(ServerId a, ServerId b) const;

  SwitchPath PathBrokerServer(BrokerId b, ServerId s) const;
  SwitchPath PathBrokerBroker(BrokerId a, BrokerId b) const;
  SwitchPath PathServerServer(ServerId a, ServerId b) const;

  // ----- Origin coarsening (§3.2) -----

  // Number of distinct origins a server distinguishes.
  std::uint16_t NumOrigins(ServerId s, bool exact = false) const;

  // Origin slot, as seen by `server`, of an access whose broker sits in rack
  // `broker_rack`.
  std::uint16_t OriginIndex(ServerId server, RackId broker_rack,
                            bool exact = false) const;

  // Estimated cost (switches) of serving one read originating at `origin`
  // (as seen by `server`) from `target`. For aggregated intermediate origins
  // the rack is unknown and the cost inside that sub-tree is estimated at 3.
  int OriginCost(ServerId server, std::uint16_t origin, ServerId target,
                 bool exact = false) const;

  // True cost of one message between a broker in `rack` and server `s`.
  int RackToServerCost(RackId rack, ServerId s) const;

  // Appends all servers inside origin sub-tree `origin` (as seen by
  // `server`) to `out`.
  void ServersInOrigin(ServerId server, std::uint16_t origin,
                       std::vector<ServerId>& out, bool exact = false) const;

  // Racks covered by an origin, as [first, last) global rack ids.
  std::pair<RackId, RackId> OriginRackRange(ServerId server,
                                            std::uint16_t origin,
                                            bool exact = false) const;

 private:
  Topology() = default;

  bool flat_ = false;
  std::uint16_t intermediates_ = 0;
  std::uint16_t racks_per_int_ = 0;
  std::uint16_t servers_per_rack_ = 0;
  std::uint16_t num_racks_ = 0;
  std::uint16_t num_servers_ = 0;
  std::uint16_t num_brokers_ = 0;
  std::uint16_t num_switches_ = 0;
};

}  // namespace dynasore::net
