// Per-switch traffic accounting. Every message adds its size to every switch
// it traverses; the paper's headline metric is the resulting load on the top
// switch, with per-tier breakdowns (Tables 2-3) and time series (Figs 4/6).
//
// Application messages (read/write requests and their answers) weigh 10
// units; protocol/system messages weigh 1 (paper §4.3). Replica copies carry
// a view and weigh `view_copy_size` but are classed as system traffic so the
// convergence experiment (Fig 6) can separate the two.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace dynasore::net {

enum class MsgClass : std::uint8_t { kApp = 0, kSystem = 1 };
inline constexpr int kNumMsgClasses = 2;

struct TrafficConfig {
  std::uint32_t app_msg_size = 10;
  std::uint32_t sys_msg_size = 1;
  std::uint32_t view_copy_size = 10;
  // When true, a read coalesces all view requests that target the same
  // server into a single request/answer pair (ablation; the default follows
  // one message per view).
  bool batch_per_server = false;
  std::uint32_t bucket_seconds = static_cast<std::uint32_t>(kSecondsPerHour);
};

class TrafficRecorder {
 public:
  TrafficRecorder(const Topology& topo, const TrafficConfig& config);

  const TrafficConfig& config() const { return config_; }

  // Adds one message of `size` units over `path` at time `t`.
  void Record(const SwitchPath& path, std::uint32_t size, MsgClass cls,
              SimTime t);

  // Request + answer of the same size over the same path.
  void RecordRoundTrip(const SwitchPath& path, std::uint32_t size,
                       MsgClass cls, SimTime t) {
    Record(path, size, cls, t);
    Record(path, size, cls, t);
  }

  std::uint64_t SwitchTotal(SwitchId sw, MsgClass cls) const;
  std::uint64_t TierTotal(Tier tier, MsgClass cls) const;
  double TierAverage(Tier tier, MsgClass cls) const;

  // Number of switches aggregated into a tier (1 top, m intermediates,
  // R racks; the flat topology has a single switch in tier kTop).
  std::uint32_t SwitchesInTier(Tier tier) const;

  // Per-bucket series of tier traffic (bucket = t / bucket_seconds).
  const std::vector<std::uint64_t>& Series(Tier tier, MsgClass cls) const;

  // Sum of the series over bucket range [from, to).
  std::uint64_t SeriesRange(Tier tier, MsgClass cls, std::size_t from,
                            std::size_t to) const;

  std::size_t NumBuckets() const { return num_buckets_; }

  void Reset();

 private:
  const Topology* topo_;
  TrafficConfig config_;
  // totals_[cls][switch]
  std::array<std::vector<std::uint64_t>, kNumMsgClasses> totals_;
  // series_[cls][tier][bucket]
  std::array<std::array<std::vector<std::uint64_t>, kNumTiers>, kNumMsgClasses>
      series_;
  std::size_t num_buckets_ = 0;
};

}  // namespace dynasore::net
