// One DynaSoRe cache server (paper §3.2 "Storage management"): a bounded
// in-memory key-value store whose capacity is expressed in views, holding
// per-replica access statistics (sparse per-origin rotating read counters
// plus a write counter), per-replica utilities, and the server's admission
// threshold.
//
// The server is mechanism only; the *policy* (Algorithms 1-3, which need the
// topology and the global replica registry) lives in core::Engine, which
// recomputes utilities and thresholds after every counter rotation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rotating_counter.h"
#include "common/types.h"
#include "store/view_data.h"

namespace dynasore::store {

struct StoreConfig {
  std::uint32_t capacity_views = 1024;
  // Eviction watermark: a background sweep frees memory above this fill
  // fraction so new replicas can always be deployed (§3.2 uses 95%).
  double evict_watermark = 0.95;
  // Fill fraction that must be occupied by views above the admission
  // threshold (§3.2 uses 90%).
  double threshold_fill = 0.90;
  std::uint8_t counter_slots = 24;
  // Replicas are pinned (infinite utility, not evictable) while the view has
  // at most this many replicas system-wide. 1 = paper default; higher values
  // give the in-memory durability mode of §3.3.
  std::uint32_t min_replicas_pin = 1;
  bool payload_mode = false;
  std::size_t max_events_per_view = 64;
};

inline constexpr double kInfiniteUtility =
    std::numeric_limits<double>::infinity();

// Per-replica access log: reads per origin (sparse; a tree server has at
// most racks_per_intermediate + intermediates - 1 origins) plus writes.
class ReplicaStats {
 public:
  explicit ReplicaStats(std::uint8_t counter_slots)
      : writes_(counter_slots), counter_slots_(counter_slots) {}

  void RecordRead(std::uint16_t origin, std::uint32_t n = 1);
  void RecordWrite(std::uint32_t n = 1);
  void Rotate();

  std::uint32_t ReadsFrom(std::uint16_t origin) const;
  std::uint32_t TotalReads() const;
  std::uint32_t TotalWrites() const { return writes_.Total(); }

  // Sorted (origin, reads-in-window) pairs with non-zero counts.
  struct OriginReads {
    std::uint16_t origin;
    std::uint32_t reads;
  };
  void CollectReads(std::vector<OriginReads>& out) const;

  // Folds another replica's statistics into this one, re-mapping each origin
  // through `remap` (used on migration and eviction; see DESIGN.md §4).
  // `include_writes` merges the write counter too — correct for migrations
  // (the log moves wholesale) but wrong for evictions, where the surviving
  // replica already recorded every write itself.
  void MergeRemapped(const ReplicaStats& other,
                     const std::function<std::vector<std::uint16_t>(
                         std::uint16_t)>& remap,
                     bool include_writes = true);

  // Removes one origin's window and returns its read count. Used when a new
  // replica takes over an origin's traffic: the read history moves with it.
  std::uint32_t ExtractOrigin(std::uint16_t origin);

 private:
  struct OriginCounter {
    std::uint16_t origin;
    common::RotatingCounter counter;
  };
  // Sorted by origin; linear scans are fine at these cardinalities.
  std::vector<OriginCounter> reads_;
  common::RotatingCounter writes_;
  std::uint8_t counter_slots_;

  common::RotatingCounter& CounterFor(std::uint16_t origin);
};

class StoreServer {
 public:
  StoreServer(ServerId id, const StoreConfig& config);

  ServerId id() const { return id_; }
  const StoreConfig& config() const { return config_; }
  std::uint32_t capacity() const { return config_.capacity_views; }
  std::uint32_t used() const { return static_cast<std::uint32_t>(replicas_.size()); }
  bool Full() const { return used() >= capacity(); }
  bool AboveWatermark() const {
    return static_cast<double>(used()) >
           config_.evict_watermark * capacity();
  }

  bool Has(ViewId view) const { return replicas_.contains(view); }

  // Inserts an empty replica; fails (returns false) at capacity. `force`
  // admits the replica even on a full server: reconfiguration imports
  // (core::Engine::ImportViewState) mirror the authoritative owner's replica
  // set verbatim, and may transiently exceed capacity when the two engines'
  // occupancies diverged — the watermark sweep restores the bound.
  bool Insert(ViewId view, bool force = false);
  void Erase(ViewId view);

  ReplicaStats* Find(ViewId view);
  const ReplicaStats* Find(ViewId view) const;

  void RecordRead(ViewId view, std::uint16_t origin);
  void RecordWrite(ViewId view);

  void RotateCounters();

  double admission_threshold() const { return admission_threshold_; }
  void set_admission_threshold(double t) { admission_threshold_ = t; }

  double utility(ViewId view) const;
  void set_utility(ViewId view, double utility);

  // View ids held, sorted ascending (deterministic iteration for ticks).
  std::vector<ViewId> SortedViews() const;

  // Payload mode.
  ViewData* FindData(ViewId view);
  const ViewData* FindData(ViewId view) const;

 private:
  struct Entry {
    explicit Entry(std::uint8_t slots) : stats(slots) {}
    ReplicaStats stats;
    double utility = 0;
    std::unique_ptr<ViewData> data;  // only in payload mode
  };

  ServerId id_;
  StoreConfig config_;
  std::unordered_map<ViewId, Entry> replicas_;
  double admission_threshold_ = 0;
};

}  // namespace dynasore::store
