#include "store/store_server.h"

#include <algorithm>
#include <cassert>

namespace dynasore::store {

void ReplicaStats::RecordRead(std::uint16_t origin, std::uint32_t n) {
  CounterFor(origin).Add(n);
}

void ReplicaStats::RecordWrite(std::uint32_t n) { writes_.Add(n); }

void ReplicaStats::Rotate() {
  writes_.Rotate();
  for (auto& entry : reads_) entry.counter.Rotate();
  // Drop origins whose whole window emptied, keeping the scans short.
  std::erase_if(reads_,
                [](const OriginCounter& c) { return c.counter.IsZero(); });
}

std::uint32_t ReplicaStats::ReadsFrom(std::uint16_t origin) const {
  for (const auto& entry : reads_) {
    if (entry.origin == origin) return entry.counter.Total();
  }
  return 0;
}

std::uint32_t ReplicaStats::TotalReads() const {
  std::uint32_t total = 0;
  for (const auto& entry : reads_) total += entry.counter.Total();
  return total;
}

void ReplicaStats::CollectReads(std::vector<OriginReads>& out) const {
  out.clear();
  for (const auto& entry : reads_) {
    if (entry.counter.Total() > 0) {
      out.push_back(OriginReads{entry.origin, entry.counter.Total()});
    }
  }
}

void ReplicaStats::MergeRemapped(
    const ReplicaStats& other,
    const std::function<std::vector<std::uint16_t>(std::uint16_t)>& remap,
    bool include_writes) {
  for (const auto& entry : other.reads_) {
    const std::uint32_t total = entry.counter.Total();
    if (total == 0) continue;
    const std::vector<std::uint16_t> targets = remap(entry.origin);
    if (targets.empty()) continue;
    const auto share =
        static_cast<std::uint32_t>(total / targets.size());
    std::uint32_t remainder =
        total - share * static_cast<std::uint32_t>(targets.size());
    for (std::uint16_t target : targets) {
      std::uint32_t amount = share;
      if (remainder > 0) {
        ++amount;
        --remainder;
      }
      if (amount > 0) CounterFor(target).Add(amount);
    }
  }
  if (include_writes) writes_.Merge(other.writes_);
}

std::uint32_t ReplicaStats::ExtractOrigin(std::uint16_t origin) {
  auto it = std::lower_bound(
      reads_.begin(), reads_.end(), origin,
      [](const OriginCounter& c, std::uint16_t o) { return c.origin < o; });
  if (it == reads_.end() || it->origin != origin) return 0;
  const std::uint32_t total = it->counter.Total();
  reads_.erase(it);
  return total;
}

common::RotatingCounter& ReplicaStats::CounterFor(std::uint16_t origin) {
  auto it = std::lower_bound(
      reads_.begin(), reads_.end(), origin,
      [](const OriginCounter& c, std::uint16_t o) { return c.origin < o; });
  if (it == reads_.end() || it->origin != origin) {
    it = reads_.insert(
        it, OriginCounter{origin, common::RotatingCounter(counter_slots_)});
  }
  return it->counter;
}

StoreServer::StoreServer(ServerId id, const StoreConfig& config)
    : id_(id), config_(config) {
  assert(config.capacity_views > 0);
}

bool StoreServer::Insert(ViewId view, bool force) {
  if (Has(view)) return true;
  if (!force && Full()) return false;
  auto [it, inserted] = replicas_.emplace(view, Entry(config_.counter_slots));
  if (inserted && config_.payload_mode) {
    it->second.data = std::make_unique<ViewData>(config_.max_events_per_view);
  }
  return true;
}

void StoreServer::Erase(ViewId view) { replicas_.erase(view); }

ReplicaStats* StoreServer::Find(ViewId view) {
  auto it = replicas_.find(view);
  return it == replicas_.end() ? nullptr : &it->second.stats;
}

const ReplicaStats* StoreServer::Find(ViewId view) const {
  auto it = replicas_.find(view);
  return it == replicas_.end() ? nullptr : &it->second.stats;
}

void StoreServer::RecordRead(ViewId view, std::uint16_t origin) {
  auto it = replicas_.find(view);
  assert(it != replicas_.end());
  it->second.stats.RecordRead(origin);
}

void StoreServer::RecordWrite(ViewId view) {
  auto it = replicas_.find(view);
  assert(it != replicas_.end());
  it->second.stats.RecordWrite();
}

void StoreServer::RotateCounters() {
  for (auto& [view, entry] : replicas_) entry.stats.Rotate();
}

double StoreServer::utility(ViewId view) const {
  auto it = replicas_.find(view);
  assert(it != replicas_.end());
  return it->second.utility;
}

void StoreServer::set_utility(ViewId view, double utility) {
  auto it = replicas_.find(view);
  assert(it != replicas_.end());
  it->second.utility = utility;
}

std::vector<ViewId> StoreServer::SortedViews() const {
  std::vector<ViewId> views;
  views.reserve(replicas_.size());
  for (const auto& [view, entry] : replicas_) views.push_back(view);
  std::sort(views.begin(), views.end());
  return views;
}

ViewData* StoreServer::FindData(ViewId view) {
  auto it = replicas_.find(view);
  return it == replicas_.end() ? nullptr : it->second.data.get();
}

const ViewData* StoreServer::FindData(ViewId view) const {
  auto it = replicas_.find(view);
  return it == replicas_.end() ? nullptr : it->second.data.get();
}

}  // namespace dynasore::store
