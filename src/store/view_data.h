// Event and view payloads for the library's payload mode, in which cache
// servers hold actual bytes (examples and the Client facade use this; the
// large-scale experiments run metadata-only for speed, as the paper's own
// simulator does).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace dynasore::store {

// One piece of user-produced content. The paper treats events as opaque
// fixed-size byte arrays (e.g. 140-character posts); heavy media lives in
// dedicated stores, not in the cache.
struct Event {
  UserId author = 0;
  SimTime time = 0;
  std::string payload;
};

// A producer-pivoted view: the most recent events a user has produced,
// newest last. Bounded so a view's memory footprint is fixed.
class ViewData {
 public:
  explicit ViewData(std::size_t max_events = 64) : max_events_(max_events) {}

  void Append(Event event);
  void ReplaceWith(std::span<const Event> events);

  std::span<const Event> events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  std::size_t max_events() const { return max_events_; }

 private:
  std::size_t max_events_;
  std::vector<Event> events_;
};

inline void ViewData::Append(Event event) {
  events_.push_back(std::move(event));
  if (events_.size() > max_events_) {
    events_.erase(events_.begin(),
                  events_.begin() +
                      static_cast<std::ptrdiff_t>(events_.size() - max_events_));
  }
}

inline void ViewData::ReplaceWith(std::span<const Event> events) {
  const std::size_t take = std::min(events.size(), max_events_);
  events_.assign(events.end() - static_cast<std::ptrdiff_t>(take),
                 events.end());
}

}  // namespace dynasore::store
