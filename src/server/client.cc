#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dynasore::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string("net::Client: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

void Client::Connect(const std::string& host, std::uint16_t port) {
  if (fd_ >= 0) throw std::logic_error("net::Client::Connect: already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("net::Client: bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    errno = err;
    ThrowErrno("connect");
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  tx_.clear();
  rx_.clear();
  rx_off_ = 0;
}

std::uint32_t Client::SubmitOp(netp::MsgType type, SimTime time,
                               UserId user) {
  const std::uint32_t seq = next_seq_++;
  netp::OpPayload p;
  p.time = time;
  p.user = user;
  scratch_.clear();
  netp::Encode(p, &scratch_);
  netp::EncodeFrame(type, seq, scratch_, &tx_);
  if (tx_.size() >= kAutoShipBytes) Ship();
  return seq;
}

std::uint32_t Client::SubmitRead(SimTime time, UserId user) {
  return SubmitOp(netp::MsgType::kReadReq, time, user);
}

std::uint32_t Client::SubmitWrite(SimTime time, UserId user) {
  return SubmitOp(netp::MsgType::kWriteReq, time, user);
}

void Client::Ship() {
  std::size_t off = 0;
  while (off < tx_.size()) {
    const ssize_t n =
        ::send(fd_, tx_.data() + off, tx_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ThrowErrno("send");
  }
  tx_.clear();
}

netp::Frame Client::ReadFrame() {
  while (true) {
    const std::span<const std::uint8_t> window(rx_.data() + rx_off_,
                                               rx_.size() - rx_off_);
    const netp::DecodeResult r = netp::DecodeFrame(window);
    if (r.status == netp::DecodeStatus::kOk) {
      rx_off_ += r.consumed;
      if (rx_off_ == rx_.size()) {
        rx_.clear();
        rx_off_ = 0;
      }
      return r.frame;
    }
    if (r.status != netp::DecodeStatus::kNeedMore) {
      throw std::runtime_error(
          std::string("net::Client: response stream corrupt: ") +
          netp::DecodeStatusName(r.status));
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rx_.insert(rx_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      throw std::runtime_error(
          "net::Client: server closed the connection mid-response");
    }
    if (errno == EINTR) continue;
    ThrowErrno("recv");
  }
}

bool Client::AbsorbOpAck(const netp::Frame& frame) {
  if (frame.header.type == netp::MsgType::kBusyResp) {
    OpAck ack;
    ack.seq = frame.header.seq;
    ack.busy = true;
    acks_.push_back(ack);
    ++acked_busy_;
    return true;
  }
  if (frame.header.type == netp::MsgType::kOpResp) {
    const auto resp = netp::DecodeOpResp(frame.payload);
    if (!resp.has_value()) {
      throw std::runtime_error("net::Client: malformed kOpResp payload");
    }
    OpAck ack;
    ack.seq = frame.header.seq;
    ack.resp = *resp;
    acks_.push_back(ack);
    ++acked_ok_;
    return true;
  }
  return false;
}

netp::Frame Client::ReadUntil(netp::MsgType type) {
  while (true) {
    netp::Frame frame = ReadFrame();
    if (frame.header.type == type) return frame;
    if (AbsorbOpAck(frame)) continue;
    if (frame.header.type == netp::MsgType::kErrorResp) {
      const auto err = netp::DecodeError(frame.payload);
      throw std::runtime_error(
          "net::Client: server rejected the stream (kErrorResp code " +
          std::to_string(err.has_value()
                             ? static_cast<unsigned>(err->code)
                             : 0u) +
          ")");
    }
    throw std::runtime_error("net::Client: unexpected response type " +
                             std::to_string(static_cast<unsigned>(
                                 frame.header.type)));
  }
}

Client::OpAck Client::WaitOpAck() {
  Ship();
  while (acks_.empty()) {
    const netp::Frame frame = ReadFrame();
    if (AbsorbOpAck(frame)) continue;
    if (frame.header.type == netp::MsgType::kErrorResp) {
      throw std::runtime_error(
          "net::Client: server rejected the stream (kErrorResp)");
    }
    throw std::runtime_error("net::Client: unexpected response type " +
                             std::to_string(static_cast<unsigned>(
                                 frame.header.type)));
  }
  const OpAck ack = acks_.front();
  acks_.pop_front();
  return ack;
}

netp::FlushRespPayload Client::Flush() {
  const std::uint32_t seq = next_seq_++;
  netp::EncodeFrame(netp::MsgType::kFlushReq, seq, {}, &tx_);
  Ship();
  const netp::Frame frame = ReadUntil(netp::MsgType::kFlushResp);
  const auto resp = netp::DecodeFlushResp(frame.payload);
  if (!resp.has_value()) {
    throw std::runtime_error("net::Client: malformed kFlushResp payload");
  }
  return *resp;
}

netp::StatsPayload Client::Stats() {
  const std::uint32_t seq = next_seq_++;
  netp::EncodeFrame(netp::MsgType::kStatsReq, seq, {}, &tx_);
  Ship();
  const netp::Frame frame = ReadUntil(netp::MsgType::kStatsResp);
  const auto resp = netp::DecodeStats(frame.payload);
  if (!resp.has_value()) {
    throw std::runtime_error("net::Client: malformed kStatsResp payload");
  }
  return *resp;
}

netp::ViewFetchRespPayload Client::FetchView(ViewId view) {
  const std::uint32_t seq = next_seq_++;
  netp::ViewFetchPayload p;
  p.view = view;
  scratch_.clear();
  netp::Encode(p, &scratch_);
  netp::EncodeFrame(netp::MsgType::kViewFetchReq, seq, scratch_, &tx_);
  Ship();
  const netp::Frame frame = ReadUntil(netp::MsgType::kViewFetchResp);
  const auto resp = netp::DecodeViewFetchResp(frame.payload);
  if (!resp.has_value()) {
    throw std::runtime_error("net::Client: malformed kViewFetchResp payload");
  }
  return *resp;
}

}  // namespace dynasore::net
