// net::Client — a small blocking client for the network serving tier.
//
// One Client owns one TCP connection to a net::Server and speaks the netp
// frame protocol (netproto/wire.h). The API is pipelined: Submit* append
// an op frame to an outbound buffer and return the frame's seq id, Ship()
// writes the buffer to the socket (Submit* auto-ships past
// kAutoShipBytes), and WaitOpAck() blocks for the next op outcome — kOk
// for an executed op, busy for one the server's admission control
// rejected (resubmit after a drain). Because busy responses are immediate
// while executed-op acks ride the server's next micro-batch flush, acks
// can arrive out of submission order; every ack carries the op's seq so
// callers correlate (the loopback bench keeps a seq -> send-time map for
// latency).
//
// Flush()/Stats()/FetchView() are blocking RPCs: they ship, send the
// request, and read frames until the matching response arrives, queueing
// any op acks encountered along the way for later WaitOpAck() calls.
//
// Not thread-safe: one thread per Client (the loopback bench gives each
// connection its own thread). Errors — connect/IO failure, a decode
// error, or the server closing the connection (including a kErrorResp) —
// throw std::runtime_error; the protocol has no mid-stream resync.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "netproto/wire.h"

namespace dynasore::net {

class Client {
 public:
  // Outbound bytes buffered before Submit* ships automatically.
  static constexpr std::size_t kAutoShipBytes = 64 * 1024;

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects (blocking). Throws std::runtime_error on failure.
  void Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Pipelined op submission; returns the seq echoed by the ack.
  std::uint32_t SubmitRead(SimTime time, UserId user);
  std::uint32_t SubmitWrite(SimTime time, UserId user);
  // Writes all buffered frames to the socket (blocking until accepted).
  void Ship();

  // One op's outcome.
  struct OpAck {
    std::uint32_t seq = 0;
    bool busy = false;             // admission control rejected; resubmit
    netp::OpRespPayload resp;      // valid when !busy
  };
  // Blocks for the next op ack (ships buffered frames first).
  OpAck WaitOpAck();
  // Acks received but not yet consumed by WaitOpAck.
  std::size_t buffered_acks() const { return acks_.size(); }

  // Blocking RPCs (each ships buffered frames first).
  netp::FlushRespPayload Flush();
  netp::StatsPayload Stats();
  netp::ViewFetchRespPayload FetchView(ViewId view);

  // Client-side conservation ledger: ops acked ok / rejected busy.
  std::uint64_t acked_ok() const { return acked_ok_; }
  std::uint64_t acked_busy() const { return acked_busy_; }

 private:
  std::uint32_t SubmitOp(netp::MsgType type, SimTime time, UserId user);
  // Reads until one complete frame decodes; throws on EOF/IO/decode error.
  netp::Frame ReadFrame();
  // Reads frames until one of `type` arrives, queueing op acks seen on the
  // way. Throws on kErrorResp or an unexpected response type.
  netp::Frame ReadUntil(netp::MsgType type);
  // Queues an op ack if `frame` is one; returns whether it was.
  bool AbsorbOpAck(const netp::Frame& frame);

  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  std::vector<std::uint8_t> tx_;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_off_ = 0;
  std::deque<OpAck> acks_;
  std::uint64_t acked_ok_ = 0;
  std::uint64_t acked_busy_ = 0;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace dynasore::net
