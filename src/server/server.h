// net::Server — the network serving tier's epoll front end.
//
// Promotes rt::ShardedRuntime from in-process request replay to a real
// client/server system: a single event-loop thread accepts concurrent TCP
// connections, incrementally decodes netp frames (netproto/wire.h) from
// each connection's receive buffer, and admits decoded read/write ops into
// a pending micro-batch. The batch executes when it reaches
// ServerConfig::flush_batch ops or when flush_interval_us elapses since
// the first admitted op: the server sorts the batch into a wl::RequestLog
// (stable by request time, so ties keep arrival order — deterministic for
// a single connection streaming a log in order) and submits it to the
// runtime as one ShardedRuntime::Run call, then answers every admitted op
// with a kOpResp carrying the shard that owned it. The runtime's own
// dispatcher/fabric/epoch machinery is unchanged — the server is strictly
// a wire front end over the existing deterministic core.
//
// Admission control and backpressure: an op is admitted only while (a) its
// connection has fewer than conn_inflight_budget ops awaiting responses
// and (b) the global pending batch holds fewer than pending_budget ops.
// Either bound exceeded answers kBusyResp *immediately* instead of
// queueing without bound — the client resubmits after a drain (the
// loopback bench's retry loop, bench_server_loopback.cc). Because the
// event loop executes micro-batches inline, execution time naturally
// throttles decode: bytes beyond the budgets wait in kernel socket
// buffers, TCP flow control pushes back to the sender, and the budgets cap
// the server's own memory. busy_sent counts every rejection, so telemetry
// shows backpressure engaging and releasing (tests/server_test.cc pins
// both). See docs/server.md for the full state machine.
//
// Time handling: with rebase_times (the default, serving mode) admitted
// ops execute with time 0 — every micro-batch is one epoch, no simulated
// clock advances, and throughput is bounded by the runtime, not by replay
// ticks. With rebase_times=false (replay mode) the original request times
// survive, so a client that streams a whole log and then flushes once gets
// a single Run over exactly the in-process dispatcher's input — the
// bit-identity contract tests/server_test.cc pins.
//
// Threading: Start() spawns the loop thread and Stop() joins it; both are
// called from the owning thread. stats() may be called from any thread
// (mutex-guarded snapshot). The runtime must outlive the server and must
// not be driven concurrently by anyone else while the server is running —
// the loop thread is the runtime's single driver.
//
// Shutdown: Stop() (or destruction) wakes the loop, executes the pending
// batch one last time, flushes every connection's outbound bytes
// best-effort, closes all sockets, and joins — no admitted op is ever
// dropped un-executed, so server restart drains cleanly and a follow-up
// Server over the same runtime continues from conserved totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "netproto/wire.h"

namespace dynasore::rt {
class ShardedRuntime;
}

namespace dynasore::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read the chosen one back with port() after
  // Start(). Valid range: any.
  std::uint16_t port = 0;
  // listen(2) backlog. Valid range: >= 1 (see Validate).
  std::uint32_t listen_backlog = 64;
  // Concurrent connections accepted; further accepts are closed on arrival.
  // Valid range: >= 1 (see Validate).
  std::uint32_t max_connections = 64;
  // Ops one connection may have awaiting responses before the server
  // answers kBusyResp instead of admitting (per-connection backpressure
  // bound). Valid range: >= 1 (see Validate).
  std::uint32_t conn_inflight_budget = 4096;
  // Ops the global pending micro-batch may hold before *any* connection's
  // next op is answered kBusyResp (server-wide admission bound). Valid
  // range: >= 1 (see Validate).
  std::uint32_t pending_budget = 65536;
  // Execute the pending batch once it holds this many ops... Valid range:
  // >= 1 (see Validate).
  std::uint32_t flush_batch = 8192;
  // ...or once this much wall-clock passed since its first op was admitted
  // (the latency bound a sparse trickle of ops pays). Valid range: >= 1
  // (see Validate; epoll granularity rounds up to 1ms).
  std::uint64_t flush_interval_us = 1000;
  // Serving mode: admitted ops execute with time 0, one epoch per
  // micro-batch. false preserves request times for replay-mode
  // bit-identity (header comment).
  bool rebase_times = true;

  // Checks the ranges above; throws std::invalid_argument naming the
  // offending field (same contract as rt::RuntimeConfig::Validate).
  void Validate() const {
    if (listen_backlog == 0) {
      throw std::invalid_argument(
          "ServerConfig::listen_backlog must be at least 1 (listen(2) with "
          "a 0 backlog cannot queue any connection)");
    }
    if (max_connections == 0) {
      throw std::invalid_argument(
          "ServerConfig::max_connections must be at least 1 (a server that "
          "admits no connection can serve nothing)");
    }
    if (conn_inflight_budget == 0) {
      throw std::invalid_argument(
          "ServerConfig::conn_inflight_budget must be at least 1 (a 0 "
          "budget would answer kBusy to every op forever)");
    }
    if (pending_budget == 0) {
      throw std::invalid_argument(
          "ServerConfig::pending_budget must be at least 1 (a 0 budget "
          "would answer kBusy to every op forever)");
    }
    if (flush_batch == 0) {
      throw std::invalid_argument(
          "ServerConfig::flush_batch must be at least 1 (a 0-op batch "
          "would execute on every admission — use 1 to mean that)");
    }
    if (flush_interval_us == 0) {
      throw std::invalid_argument(
          "ServerConfig::flush_interval_us must be at least 1 (a 0 "
          "interval has no meaning at epoll's millisecond granularity; "
          "use flush_batch=1 for immediate execution)");
    }
  }
};

// The server-side conservation ledger (docs/server.md): every admitted op
// is executed exactly once and answered exactly once, so at any quiescent
// point ops_received == ops_executed + busy_sent + pending, and
// ops_executed == acks_sent. Snapshot via Server::stats().
struct ServerStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t conns_rejected = 0;  // over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t decode_errors = 0;   // connections dropped mid-frame
  std::uint64_t ops_received = 0;    // op frames decoded (admitted or busy)
  std::uint64_t ops_executed = 0;    // ops run through the runtime
  std::uint64_t acks_sent = 0;       // kOpResp frames queued
  std::uint64_t busy_sent = 0;       // kBusyResp frames queued
  std::uint64_t batches_run = 0;     // micro-batch Run() calls
  std::uint64_t flushes = 0;         // kFlushReq frames served
  std::uint64_t runtime_requests = 0;  // runtime totals at last batch
  std::uint64_t runtime_reads = 0;
  std::uint64_t runtime_writes = 0;
  std::uint64_t e2e_samples = 0;     // runtime e2e_latency count
};

class Server {
 public:
  // Validates the config; the runtime must outlive the server. Throws
  // std::invalid_argument on bad config.
  Server(rt::ShardedRuntime& runtime, const ServerConfig& config);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the event-loop thread. Throws
  // std::runtime_error on socket/bind/listen failure. Calling Start on a
  // started server throws std::logic_error.
  void Start();

  // Drains (executes the pending batch, best-effort flushes outbound
  // bytes), closes every connection, and joins the loop thread. Idempotent.
  void Stop();

  // The bound port — the config's, or the kernel-chosen one when the
  // config said 0. Valid after Start().
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  struct Connection;
  struct PendingOp {
    std::uint64_t conn_id = 0;  // generation-unique, not the fd
    std::uint32_t seq = 0;      // client's frame seq, echoed in the ack
    Request request;
  };

  void Loop();
  void AcceptAll();
  void HandleReadable(Connection& c);
  void HandleWritable(Connection& c);
  // Decodes every complete frame currently buffered on `c`; returns false
  // when the connection must close (protocol violation).
  bool DecodeBuffered(Connection& c);
  // One decoded frame: admission for ops, immediate service for
  // flush/stats/view-fetch. Returns false to close the connection.
  bool HandleFrame(Connection& c, const netp::Frame& frame);
  // Builds the micro-batch log, runs it through the runtime, and queues
  // every admitted op's kOpResp. No-op on an empty batch.
  void ExecutePending();
  void QueueFrame(Connection& c, netp::MsgType type, std::uint32_t seq,
                  std::span<const std::uint8_t> payload);
  void FlushSend(Connection& c);
  void CloseConnection(std::uint64_t conn_id);
  Connection* FindConnection(std::uint64_t conn_id);
  netp::StatsPayload BuildStatsPayload() const;
  // Copies the loop-thread ledger into the shared snapshot. Called at
  // event-loop iteration boundaries, so stats() readers never contend with
  // per-op bookkeeping.
  void PublishStats();

  rt::ShardedRuntime& runtime_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() wakes the loop
  std::uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Loop-thread state. Connections are keyed by a generation-unique id so
  // a pending op whose connection died (and whose fd was reused) can never
  // answer the wrong socket.
  std::vector<std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::vector<PendingOp> pending_;
  std::uint64_t first_pending_ns_ = 0;  // admission time of pending_[0]
  std::vector<std::uint8_t> scratch_;   // payload encode scratch

  // The loop thread's private ledger (no lock on the per-op path) and the
  // mutex-guarded snapshot PublishStats copies it into for stats().
  ServerStats ledger_;
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace dynasore::net
