#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "runtime/sharded_runtime.h"
#include "workload/request_log.h"

namespace dynasore::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string("net::Server: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

// One accepted connection. rx accumulates raw bytes until DecodeBuffered
// eats complete frames from the front; tx accumulates encoded response
// frames until the socket accepts them. Both buffers compact by offset so
// steady-state traffic never reallocates.
struct Server::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  std::vector<std::uint8_t> rx;
  std::size_t rx_off = 0;  // parsed prefix
  std::vector<std::uint8_t> tx;
  std::size_t tx_off = 0;  // sent prefix
  std::uint32_t inflight = 0;  // admitted ops awaiting kOpResp
  bool want_write = false;     // EPOLLOUT armed
};

Server::Server(rt::ShardedRuntime& runtime, const ServerConfig& config)
    : runtime_(runtime), config_(config) {
  config_.Validate();
}

Server::~Server() { Stop(); }

void Server::Start() {
  if (running_.load(std::memory_order_acquire) || loop_.joinable()) {
    throw std::logic_error("net::Server::Start: already started");
  }
  stop_requested_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net::Server: bad host address: " +
                             config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    ThrowErrno("bind");
  }
  if (::listen(listen_fd_, static_cast<int>(config_.listen_backlog)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    ThrowErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    ThrowErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    ThrowErrno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    errno = err;
    ThrowErrno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listen fd marker
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = ~std::uint64_t{0};  // wake fd marker
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
}

void Server::Stop() {
  if (loop_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    loop_.join();
  }
  running_.store(false, std::memory_order_release);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void Server::PublishStats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = ledger_;
}

Server::Connection* Server::FindConnection(std::uint64_t conn_id) {
  for (auto& c : conns_) {
    if (c->id == conn_id) return c.get();
  }
  return nullptr;
}

void Server::CloseConnection(std::uint64_t conn_id) {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i]->id != conn_id) continue;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conns_[i]->fd, nullptr);
    ::close(conns_[i]->fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    ++ledger_.conns_closed;
    return;
  }
}

void Server::AcceptAll() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; keep serving
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      ++ledger_.conns_rejected;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.push_back(std::move(conn));
    ++ledger_.conns_accepted;
  }
}

void Server::QueueFrame(Connection& c, netp::MsgType type, std::uint32_t seq,
                        std::span<const std::uint8_t> payload) {
  netp::EncodeFrame(type, seq, payload, &c.tx);
}

void Server::FlushSend(Connection& c) {
  while (c.tx_off < c.tx.size()) {
    const ssize_t n = ::send(c.fd, c.tx.data() + c.tx_off,
                             c.tx.size() - c.tx_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.tx_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT;
        ev.data.u64 = c.id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
      }
      return;
    }
    // Hard send error (peer vanished): drop the buffered bytes; the read
    // side will observe the close and reap the connection.
    c.tx.clear();
    c.tx_off = 0;
    return;
  }
  c.tx.clear();
  c.tx_off = 0;
  if (c.want_write) {
    c.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }
}

void Server::HandleWritable(Connection& c) { FlushSend(c); }

netp::StatsPayload Server::BuildStatsPayload() const {
  netp::StatsPayload p;
  p.ops_received = ledger_.ops_received;
  p.ops_executed = ledger_.ops_executed;
  p.acks_sent = ledger_.acks_sent;
  p.busy_sent = ledger_.busy_sent;
  p.batches_run = ledger_.batches_run;
  p.runtime_requests = ledger_.runtime_requests;
  p.runtime_reads = ledger_.runtime_reads;
  p.runtime_writes = ledger_.runtime_writes;
  p.e2e_samples = ledger_.e2e_samples;
  return p;
}

bool Server::HandleFrame(Connection& c, const netp::Frame& frame) {
  ++ledger_.frames_received;
  scratch_.clear();
  switch (frame.header.type) {
    case netp::MsgType::kReadReq:
    case netp::MsgType::kWriteReq: {
      const auto op = netp::DecodeOp(frame.payload);
      if (!op.has_value()) break;  // falls through to kBadPayload below
      ++ledger_.ops_received;
      // Admission control: both backpressure bounds answer kBusyResp
      // immediately instead of queueing without bound.
      if (c.inflight >= config_.conn_inflight_budget ||
          pending_.size() >= config_.pending_budget) {
        ++ledger_.busy_sent;
        QueueFrame(c, netp::MsgType::kBusyResp, frame.header.seq, {});
        return true;
      }
      PendingOp pd;
      pd.conn_id = c.id;
      pd.seq = frame.header.seq;
      pd.request.time = config_.rebase_times ? 0 : op->time;
      pd.request.user = op->user;
      pd.request.op = frame.header.type == netp::MsgType::kReadReq
                          ? OpType::kRead
                          : OpType::kWrite;
      if (pending_.empty()) first_pending_ns_ = NowNs();
      pending_.push_back(pd);
      ++c.inflight;
      return true;
    }
    case netp::MsgType::kFlushReq: {
      // Everything admitted before the flush executes before the reply.
      ExecutePending();  // also uses scratch_ — re-clear before encoding
      ++ledger_.flushes;
      netp::FlushRespPayload p;
      p.executed_total = ledger_.ops_executed;
      p.batches_run = ledger_.batches_run;
      scratch_.clear();
      netp::Encode(p, &scratch_);
      QueueFrame(c, netp::MsgType::kFlushResp, frame.header.seq, scratch_);
      return true;
    }
    case netp::MsgType::kStatsReq: {
      netp::Encode(BuildStatsPayload(), &scratch_);
      QueueFrame(c, netp::MsgType::kStatsResp, frame.header.seq, scratch_);
      return true;
    }
    case netp::MsgType::kViewFetchReq: {
      const auto fetch = netp::DecodeViewFetch(frame.payload);
      if (!fetch.has_value()) break;
      netp::ViewFetchRespPayload p;
      p.view = fetch->view;
      p.owner_shard = runtime_.shard_map().shard_of(fetch->view);
      p.health = static_cast<std::uint8_t>(
          runtime_.health().num_shards() > p.owner_shard
              ? runtime_.health().state(p.owner_shard)
              : rt::ShardHealth::kUp);
      p.num_shards = runtime_.num_shards();
      netp::Encode(p, &scratch_);
      QueueFrame(c, netp::MsgType::kViewFetchResp, frame.header.seq,
                 scratch_);
      return true;
    }
    default: {
      // A response type on the request path is a protocol violation.
      ++ledger_.decode_errors;
      netp::ErrorPayload p;
      p.code = netp::ErrorCode::kBadRequest;
      netp::Encode(p, &scratch_);
      QueueFrame(c, netp::MsgType::kErrorResp, frame.header.seq, scratch_);
      return false;
    }
  }
  // Frame checksummed clean but its payload is the wrong shape for its
  // type: reject and close (framing is intact, trust is not).
  ++ledger_.decode_errors;
  netp::ErrorPayload p;
  p.code = netp::ErrorCode::kBadPayload;
  netp::Encode(p, &scratch_);
  QueueFrame(c, netp::MsgType::kErrorResp, frame.header.seq, scratch_);
  return false;
}

bool Server::DecodeBuffered(Connection& c) {
  while (true) {
    const std::span<const std::uint8_t> window(c.rx.data() + c.rx_off,
                                               c.rx.size() - c.rx_off);
    const netp::DecodeResult r = netp::DecodeFrame(window);
    if (r.status == netp::DecodeStatus::kNeedMore) break;
    if (r.status != netp::DecodeStatus::kOk) {
      // Framing lost: no resync is possible mid-stream. Tell the peer why
      // (best effort) and close.
      ++ledger_.decode_errors;
      scratch_.clear();
      netp::ErrorPayload p;
      p.code = netp::ErrorCode::kBadPayload;
      netp::Encode(p, &scratch_);
      QueueFrame(c, netp::MsgType::kErrorResp, 0, scratch_);
      return false;
    }
    c.rx_off += r.consumed;
    if (!HandleFrame(c, r.frame)) return false;
  }
  // Compact the parsed prefix away so the buffer never grows unbounded.
  if (c.rx_off > 0) {
    c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(c.rx_off));
    c.rx_off = 0;
  }
  return true;
}

void Server::HandleReadable(Connection& c) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.rx.insert(c.rx.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Orderly or half-open close. Anything already admitted still
      // executes (conservation); the acks are dropped at send time.
      CloseConnection(c.id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(c.id);  // abrupt reset
    return;
  }
  if (!DecodeBuffered(c)) {
    FlushSend(c);  // best-effort: ship the kErrorResp if the socket takes it
    CloseConnection(c.id);
    return;
  }
  FlushSend(c);
}

void Server::ExecutePending() {
  if (pending_.empty()) return;

  // Build the micro-batch log. Stable sort by time: ties keep admission
  // order, so a single connection streaming a log in order yields exactly
  // that log (the replay-mode bit-identity contract), and serving mode
  // (every time rebased to 0) preserves admission order outright.
  wl::RequestLog log;
  log.requests.reserve(pending_.size());
  for (const PendingOp& p : pending_) log.requests.push_back(p.request);
  std::stable_sort(log.requests.begin(), log.requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.time < b.time;
                   });
  log.duration = 0;
  for (const Request& r : log.requests) {
    if (r.op == OpType::kRead) {
      ++log.num_reads;
    } else {
      ++log.num_writes;
    }
  }

  const rt::RuntimeResult result = runtime_.Run(log);
  ++ledger_.batches_run;
  ledger_.ops_executed += pending_.size();
  ledger_.runtime_requests = result.totals.requests;
  ledger_.runtime_reads = result.totals.reads;
  ledger_.runtime_writes = result.totals.writes;
  ledger_.e2e_samples = result.e2e_latency.count();

  // Ack every admitted op on its (still live) connection, in admission
  // order per connection.
  scratch_.clear();
  for (const PendingOp& p : pending_) {
    Connection* c = FindConnection(p.conn_id);
    if (c == nullptr) continue;  // connection died mid-batch; op executed anyway
    --c->inflight;
    netp::OpRespPayload resp;
    resp.op = p.request.op;
    resp.shard = runtime_.shard_map().shard_of(p.request.user);
    scratch_.clear();
    netp::Encode(resp, &scratch_);
    QueueFrame(*c, netp::MsgType::kOpResp, p.seq, scratch_);
    ++ledger_.acks_sent;
  }
  pending_.clear();
  first_pending_ns_ = 0;

  for (auto& c : conns_) FlushSend(*c);
}

void Server::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (!stop_requested_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (!pending_.empty()) {
      const std::uint64_t now = NowNs();
      const std::uint64_t deadline =
          first_pending_ns_ + config_.flush_interval_us * 1000;
      timeout_ms = now >= deadline
                       ? 0
                       : static_cast<int>((deadline - now) / 1'000'000 + 1);
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only possible at teardown
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        AcceptAll();
        continue;
      }
      if (tag == ~std::uint64_t{0}) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      Connection* c = FindConnection(tag);
      if (c == nullptr) continue;  // closed earlier this wake
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(*c);
      // Re-find: HandleWritable cannot close, but keep the pattern robust.
      c = FindConnection(tag);
      if (c == nullptr) continue;
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        HandleReadable(*c);
      }
    }

    // Execute when the batch or the deadline trips. (Both checks sit after
    // event processing so one decode pass can fill a whole batch.)
    if (pending_.size() >= config_.flush_batch ||
        (!pending_.empty() &&
         NowNs() >= first_pending_ns_ + config_.flush_interval_us * 1000)) {
      ExecutePending();
    }
    PublishStats();
  }

  // Drain: execute what was admitted, ship what the sockets will take,
  // close everything. No admitted op is dropped un-executed.
  ExecutePending();
  for (auto& c : conns_) FlushSend(*c);
  while (!conns_.empty()) CloseConnection(conns_.front()->id);
  PublishStats();
}

}  // namespace dynasore::net
