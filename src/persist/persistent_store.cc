#include "persist/persistent_store.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dynasore::persist {

namespace {
std::FILE* AsFile(void* handle) { return static_cast<std::FILE*>(handle); }
}  // namespace

PersistentStore::PersistentStore(std::optional<std::string> wal_path,
                                 std::size_t max_events_per_view)
    : wal_path_(std::move(wal_path)),
      max_events_per_view_(max_events_per_view) {
  if (wal_path_) {
    wal_file_ = std::fopen(wal_path_->c_str(), "a");
    assert(wal_file_ != nullptr && "cannot open WAL for append");
  }
}

PersistentStore::~PersistentStore() {
  if (wal_file_ != nullptr) std::fclose(AsFile(wal_file_));
}

PersistentStore::PersistentStore(PersistentStore&& other) noexcept
    : views_(std::move(other.views_)),
      wal_path_(std::move(other.wal_path_)),
      max_events_per_view_(other.max_events_per_view_),
      num_events_(other.num_events_),
      wal_file_(other.wal_file_) {
  other.wal_file_ = nullptr;
}

PersistentStore& PersistentStore::operator=(PersistentStore&& other) noexcept {
  if (this == &other) return *this;
  if (wal_file_ != nullptr) std::fclose(AsFile(wal_file_));
  views_ = std::move(other.views_);
  wal_path_ = std::move(other.wal_path_);
  max_events_per_view_ = other.max_events_per_view_;
  num_events_ = other.num_events_;
  wal_file_ = other.wal_file_;
  other.wal_file_ = nullptr;
  return *this;
}

void PersistentStore::Append(store::Event event) {
  assert(event.payload.find('\n') == std::string::npos);
  if (wal_file_ != nullptr) {
    // Log before applying: the in-memory state is always recoverable.
    std::fprintf(AsFile(wal_file_), "%u %llu %s\n", event.author,
                 static_cast<unsigned long long>(event.time),
                 event.payload.c_str());
    std::fflush(AsFile(wal_file_));
  }
  auto [it, inserted] =
      views_.try_emplace(event.author, store::ViewData(max_events_per_view_));
  ++num_events_;
  it->second.Append(std::move(event));
}

std::span<const store::Event> PersistentStore::FetchView(UserId user) const {
  auto it = views_.find(user);
  if (it == views_.end()) return {};
  return it->second.events();
}

PersistentStore PersistentStore::Recover(const std::string& wal_path,
                                         std::size_t max_events_per_view) {
  PersistentStore store(std::nullopt, max_events_per_view);
  store.ReplayWal(wal_path);
  // Re-attach the WAL for future appends.
  store.wal_path_ = wal_path;
  store.wal_file_ = std::fopen(wal_path.c_str(), "a");
  assert(store.wal_file_ != nullptr);
  return store;
}

void PersistentStore::ReplayWal(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    store::Event event;
    unsigned long long time = 0;
    fields >> event.author >> time;
    event.time = time;
    std::getline(fields, event.payload);
    if (!event.payload.empty() && event.payload.front() == ' ') {
      event.payload.erase(event.payload.begin());
    }
    auto [it, inserted] = views_.try_emplace(
        event.author, store::ViewData(max_events_per_view_));
    ++num_events_;
    it->second.Append(std::move(event));
  }
}

}  // namespace dynasore::persist
