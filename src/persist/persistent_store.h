// Durable backing store (paper §2.2 / §3.3). DynaSoRe follows Facebook's
// memcache architecture: a write is persisted first, then the in-memory
// store's write proxy is notified and *fetches the new version of the view
// from the persistent store*. Crashed cache servers rebuild sole replicas
// from here.
//
// The implementation is an in-memory map with an optional append-only
// write-ahead log on disk (one line per event) that `Recover` replays — the
// moral equivalent of the BookKeeper-style logging the paper cites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "store/view_data.h"

namespace dynasore::persist {

class PersistentStore {
 public:
  // With a path, every append is logged to disk before being applied.
  explicit PersistentStore(std::optional<std::string> wal_path = std::nullopt,
                           std::size_t max_events_per_view = 64);
  ~PersistentStore();

  PersistentStore(PersistentStore&&) noexcept;
  PersistentStore& operator=(PersistentStore&&) noexcept;
  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  // Durably appends an event to the author's view. Payloads must not
  // contain newlines (they are WAL line records).
  void Append(store::Event event);

  // Latest version of a user's view (empty if the user never wrote).
  std::span<const store::Event> FetchView(UserId user) const;

  std::uint64_t num_events() const { return num_events_; }

  // Rebuilds a store from an existing WAL (crash recovery). Subsequent
  // appends continue the same log.
  static PersistentStore Recover(const std::string& wal_path,
                                 std::size_t max_events_per_view = 64);

 private:
  void ReplayWal(const std::string& path);

  std::unordered_map<UserId, store::ViewData> views_;
  std::optional<std::string> wal_path_;
  std::size_t max_events_per_view_;
  std::uint64_t num_events_ = 0;
  void* wal_file_ = nullptr;  // std::FILE*, kept opaque in the header
};

}  // namespace dynasore::persist
