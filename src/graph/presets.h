// Dataset presets mirroring Table 1 of the paper at a configurable scale.
//
//               # users   # links   directed
//   Twitter       1.7M       5M       yes
//   Facebook      3.0M      47M       no
//   LiveJournal   4.8M      69M       no
//
// `scale` multiplies the user count; the links-per-user ratio is preserved,
// so scale = 0.01 yields a 17k-user Twitter-shaped graph with ~50k edges.
#pragma once

#include <string>

#include "graph/generator.h"
#include "graph/social_graph.h"

namespace dynasore::graph {

enum class Dataset { kTwitter, kFacebook, kLiveJournal };

struct DatasetSpec {
  std::string name;
  GraphGenConfig config;
};

DatasetSpec MakeDatasetSpec(Dataset dataset, double scale, std::uint64_t seed);

SocialGraph GenerateDataset(Dataset dataset, double scale, std::uint64_t seed);

// Parses "twitter" / "facebook" / "livejournal"; returns kFacebook for
// anything unrecognized.
Dataset ParseDataset(const std::string& name);

std::string DatasetName(Dataset dataset);

}  // namespace dynasore::graph
