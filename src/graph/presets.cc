#include "graph/presets.h"

#include <algorithm>
#include <cmath>

namespace dynasore::graph {

DatasetSpec MakeDatasetSpec(Dataset dataset, double scale,
                            std::uint64_t seed) {
  DatasetSpec spec;
  GraphGenConfig& c = spec.config;
  c.seed = seed;
  switch (dataset) {
    case Dataset::kTwitter:
      spec.name = "twitter";
      c.num_users = static_cast<std::uint32_t>(std::lround(1.7e6 * scale));
      c.links_per_user = 5.0 / 1.7;  // 5M directed follow links / 1.7M users
      c.directed = true;
      c.degree_exponent = 2.1;  // follower graphs are very heavy-tailed
      c.mixing = 0.15;          // interest-driven follows cross communities
      break;
    case Dataset::kFacebook:
      spec.name = "facebook";
      c.num_users = static_cast<std::uint32_t>(std::lround(3.0e6 * scale));
      c.links_per_user = 47.0 / 3.0;  // 47M friendships / 3M users
      c.directed = false;
      c.degree_exponent = 2.4;
      c.mixing = 0.06;  // friendships are strongly community-local
      break;
    case Dataset::kLiveJournal:
      spec.name = "livejournal";
      c.num_users = static_cast<std::uint32_t>(std::lround(4.8e6 * scale));
      c.links_per_user = 69.0 / 4.8;  // 69M links / 4.8M users
      c.directed = false;
      c.degree_exponent = 2.3;
      c.mixing = 0.08;
      break;
  }
  c.num_users = std::max<std::uint32_t>(c.num_users, 64);
  // Community sizing has two constraints. (1) A community must be able to
  // absorb a user's friendships (min >= ~2x the average degree), or the
  // generator is forced to wire "friends" outside the community and the
  // clustering every placement strategy depends on evaporates. (2) It
  // should not exceed a rack's share of the views (num_users / num_racks),
  // matching the paper's full-size regime where communities fit within a
  // server or rack; larger blobs make locality unrecoverable at small
  // scale.
  c.min_community = std::max<std::uint32_t>(
      16, static_cast<std::uint32_t>(2.0 * c.links_per_user));
  c.max_community =
      std::max<std::uint32_t>(c.min_community * 2, c.num_users / 25);
  return spec;
}

SocialGraph GenerateDataset(Dataset dataset, double scale, std::uint64_t seed) {
  return GenerateCommunityGraph(MakeDatasetSpec(dataset, scale, seed).config);
}

Dataset ParseDataset(const std::string& name) {
  if (name == "twitter") return Dataset::kTwitter;
  if (name == "livejournal") return Dataset::kLiveJournal;
  return Dataset::kFacebook;
}

std::string DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kTwitter:
      return "twitter";
    case Dataset::kFacebook:
      return "facebook";
    case Dataset::kLiveJournal:
      return "livejournal";
  }
  return "unknown";
}

}  // namespace dynasore::graph
