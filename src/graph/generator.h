// Seeded social-graph generator producing the two properties the paper's
// evaluation depends on: heavy-tailed degree distributions (Huberman-style
// activity is proportional to log degree) and community structure (what
// METIS/hMETIS exploit). It stands in for the Twitter/Facebook/LiveJournal
// samples of Table 1, which are not redistributable.
//
// Construction: users are grouped into power-law-sized communities; each
// user draws a power-law target degree; each stub connects inside the
// community with probability (1 - mixing) and otherwise to a global
// preferential-attachment pool, which produces hubs spanning communities.
#pragma once

#include <cstdint>

#include "graph/social_graph.h"

namespace dynasore::graph {

struct GraphGenConfig {
  std::uint32_t num_users = 10000;
  // Target links per user: directed edges per user for directed graphs,
  // unordered pairs per user otherwise (matches Table 1's #links / #users).
  double links_per_user = 10.0;
  double degree_exponent = 2.3;
  // Fraction of stubs wired outside the home community.
  double mixing = 0.08;
  double community_exponent = 2.0;
  std::uint32_t min_community = 8;
  std::uint32_t max_community = 256;
  // Share of out-of-community stubs that go to a *nearby* community (ring
  // distance drawn from a power law) rather than to a global hub. Nearby
  // wiring gives the graph multi-scale structure: communities cluster into
  // regions, which is what hierarchical partitioning exploits.
  double near_community_bias = 0.7;
  bool directed = false;
  std::uint64_t seed = 1;
};

SocialGraph GenerateCommunityGraph(const GraphGenConfig& config);

}  // namespace dynasore::graph
