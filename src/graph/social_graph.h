// Immutable social graph in CSR form, with both adjacency directions.
//
// Semantics follow the paper's Twitter-style model: an edge u -> v means "u
// follows v", so a read by u fetches the views of u's followees (out
// neighbors) and a write by u must be visible to u's followers (in
// neighbors). Undirected graphs (Facebook/LiveJournal-style friendships)
// store each link in both directions, making followees == followers.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace dynasore::graph {

struct Edge {
  UserId from = 0;
  UserId to = 0;
};

class SocialGraph {
 public:
  SocialGraph() = default;

  // Builds from an edge list. Self-loops are dropped and duplicate edges
  // de-duplicated. For undirected graphs each input edge {u, v} appears in
  // both users' adjacency.
  static SocialGraph FromEdges(std::uint32_t num_users,
                               std::span<const Edge> edges, bool directed);

  std::uint32_t num_users() const { return num_users_; }
  // Number of stored links: directed edges for directed graphs, unordered
  // pairs for undirected ones.
  std::uint64_t num_links() const { return num_links_; }
  bool directed() const { return directed_; }

  std::span<const UserId> Followees(UserId u) const;
  std::span<const UserId> Followers(UserId u) const;

  std::uint32_t OutDegree(UserId u) const;
  std::uint32_t InDegree(UserId u) const;

  double AvgOutDegree() const;
  std::uint32_t MaxInDegree() const;
  std::uint32_t MaxOutDegree() const;

  // Symmetrized copy (union of both directions), used by the partitioner.
  // Returns *this for graphs that are already undirected.
  SocialGraph AsUndirected() const;

 private:
  std::uint32_t num_users_ = 0;
  std::uint64_t num_links_ = 0;
  bool directed_ = false;
  std::vector<std::uint64_t> out_offsets_{0};
  std::vector<UserId> out_adj_;
  std::vector<std::uint64_t> in_offsets_{0};
  std::vector<UserId> in_adj_;
};

}  // namespace dynasore::graph
