#include "graph/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace dynasore::graph {

using common::PowerLawSampler;
using common::Rng;

namespace {

struct Communities {
  std::vector<std::uint32_t> of_user;             // user -> community id
  std::vector<std::vector<UserId>> members;       // community -> users
};

Communities AssignCommunities(const GraphGenConfig& config, Rng& rng) {
  const std::uint32_t n = config.num_users;
  const std::uint32_t max_size =
      std::min(config.max_community, std::max(config.min_community + 1, n));
  PowerLawSampler sizes(config.min_community, max_size,
                        config.community_exponent);

  // Random permutation so community membership is uncorrelated with user id
  // (real datasets are not id-sorted by community either).
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  Communities result;
  result.of_user.assign(n, 0);
  std::uint32_t next = 0;
  while (next < n) {
    const std::uint32_t want = sizes.Sample(rng);
    const std::uint32_t take = std::min(want, n - next);
    std::vector<UserId> members(order.begin() + next,
                                order.begin() + next + take);
    const auto community = static_cast<std::uint32_t>(result.members.size());
    for (UserId u : members) result.of_user[u] = community;
    result.members.push_back(std::move(members));
    next += take;
  }
  return result;
}

// Per-user target stub counts scaled so their sum hits the global target.
std::vector<std::uint32_t> DrawDegrees(const GraphGenConfig& config,
                                       Rng& rng) {
  const std::uint32_t n = config.num_users;
  const auto max_degree = static_cast<std::uint32_t>(
      std::max(8.0, std::sqrt(static_cast<double>(n)) * 8.0));
  PowerLawSampler degrees(1, max_degree, config.degree_exponent);

  std::vector<std::uint32_t> draw(n);
  std::uint64_t total = 0;
  for (auto& d : draw) {
    d = degrees.Sample(rng);
    total += d;
  }
  const double target = config.links_per_user * static_cast<double>(n);
  const double scale = target / static_cast<double>(total);
  std::vector<std::uint32_t> result(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    const double want = draw[u] * scale;
    auto base = static_cast<std::uint32_t>(want);
    if (rng.NextDouble() < want - base) ++base;
    result[u] = base;
  }
  return result;
}

}  // namespace

SocialGraph GenerateCommunityGraph(const GraphGenConfig& config) {
  assert(config.num_users >= 2);
  Rng rng(config.seed);
  const std::uint32_t n = config.num_users;

  const Communities communities = AssignCommunities(config, rng);
  const std::vector<std::uint32_t> degrees = DrawDegrees(config, rng);

  // Preferential-attachment pool: every user once, plus every chosen global
  // target again (rich get richer).
  std::vector<UserId> pa_pool;
  pa_pool.reserve(n * 2);
  for (UserId u = 0; u < n; ++u) pa_pool.push_back(u);

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(config.links_per_user * n * 1.05));

  const auto num_communities =
      static_cast<std::uint32_t>(communities.members.size());
  const common::PowerLawSampler ring_distance(
      1, std::max(2u, num_communities - 1), 2.0);

  std::vector<UserId> picked;  // per-user target scratch, kept sorted
  for (UserId u = 0; u < n; ++u) {
    picked.clear();
    const std::uint32_t home_id = communities.of_user[u];
    const auto& home = communities.members[home_id];
    auto try_add = [&](UserId v) {
      if (v == u) return false;
      const auto it = std::lower_bound(picked.begin(), picked.end(), v);
      if (it != picked.end() && *it == v) return false;
      picked.insert(it, v);
      return true;
    };
    for (std::uint32_t stub = 0; stub < degrees[u]; ++stub) {
      bool placed = false;
      const bool want_local = home.size() > 1 && !rng.NextBool(config.mixing);
      if (want_local) {
        for (int attempt = 0; attempt < 6 && !placed; ++attempt) {
          const UserId v =
              home[static_cast<std::size_t>(rng.NextBounded(home.size()))];
          placed = try_add(v);
        }
      } else if (num_communities > 1 &&
                 rng.NextBool(config.near_community_bias)) {
        // Nearby community on the ring: communities form regions.
        for (int attempt = 0; attempt < 4 && !placed; ++attempt) {
          const std::uint32_t d = ring_distance.Sample(rng);
          const std::uint32_t c =
              rng.NextBool(0.5)
                  ? (home_id + d) % num_communities
                  : (home_id + num_communities - d % num_communities) %
                        num_communities;
          const auto& other = communities.members[c];
          const UserId v =
              other[static_cast<std::size_t>(rng.NextBounded(other.size()))];
          placed = try_add(v);
        }
      }
      for (int attempt = 0; attempt < 6 && !placed; ++attempt) {
        const UserId v =
            pa_pool[static_cast<std::size_t>(rng.NextBounded(pa_pool.size()))];
        placed = try_add(v);
      }
      // A stub that found no free endpoint after all attempts is dropped;
      // this only happens in pathologically dense corners.
    }
    // Emit edges for everything picked.
    for (UserId v : picked) {
      edges.push_back(Edge{u, v});
      pa_pool.push_back(v);
    }
  }

  return SocialGraph::FromEdges(n, edges, config.directed);
}

}  // namespace dynasore::graph
