#include "graph/social_graph.h"

#include <algorithm>
#include <cassert>

namespace dynasore::graph {

namespace {

// Builds a CSR from (from, to) pairs, sorting and de-duplicating per source.
void BuildCsr(std::uint32_t num_users, std::vector<Edge>& edges,
              std::vector<std::uint64_t>& offsets, std::vector<UserId>& adj) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  offsets.assign(num_users + 1, 0);
  adj.clear();
  adj.reserve(edges.size());
  UserId prev_from = 0;
  bool have_prev = false;
  UserId prev_to = 0;
  for (const Edge& e : edges) {
    if (have_prev && e.from == prev_from && e.to == prev_to) continue;  // dup
    adj.push_back(e.to);
    ++offsets[e.from + 1];
    prev_from = e.from;
    prev_to = e.to;
    have_prev = true;
  }
  for (std::uint32_t u = 0; u < num_users; ++u) offsets[u + 1] += offsets[u];
}

}  // namespace

SocialGraph SocialGraph::FromEdges(std::uint32_t num_users,
                                   std::span<const Edge> edges,
                                   bool directed) {
  SocialGraph g;
  g.num_users_ = num_users;
  g.directed_ = directed;

  std::vector<Edge> forward;
  forward.reserve(edges.size());
  for (const Edge& e : edges) {
    assert(e.from < num_users && e.to < num_users);
    if (e.from == e.to) continue;
    forward.push_back(e);
    if (!directed) forward.push_back(Edge{e.to, e.from});
  }
  BuildCsr(num_users, forward, g.out_offsets_, g.out_adj_);

  if (directed) {
    std::vector<Edge> backward;
    backward.reserve(g.out_adj_.size());
    for (std::uint32_t u = 0; u < num_users; ++u) {
      for (std::uint64_t i = g.out_offsets_[u]; i < g.out_offsets_[u + 1]; ++i) {
        backward.push_back(Edge{g.out_adj_[i], u});
      }
    }
    BuildCsr(num_users, backward, g.in_offsets_, g.in_adj_);
    g.num_links_ = g.out_adj_.size();
  } else {
    g.in_offsets_ = g.out_offsets_;
    g.in_adj_ = g.out_adj_;
    g.num_links_ = g.out_adj_.size() / 2;
  }
  return g;
}

std::span<const UserId> SocialGraph::Followees(UserId u) const {
  assert(u < num_users_);
  return {out_adj_.data() + out_offsets_[u],
          static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
}

std::span<const UserId> SocialGraph::Followers(UserId u) const {
  assert(u < num_users_);
  return {in_adj_.data() + in_offsets_[u],
          static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u])};
}

std::uint32_t SocialGraph::OutDegree(UserId u) const {
  return static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
}

std::uint32_t SocialGraph::InDegree(UserId u) const {
  return static_cast<std::uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
}

double SocialGraph::AvgOutDegree() const {
  return num_users_ == 0
             ? 0.0
             : static_cast<double>(out_adj_.size()) / num_users_;
}

std::uint32_t SocialGraph::MaxInDegree() const {
  std::uint32_t best = 0;
  for (UserId u = 0; u < num_users_; ++u) best = std::max(best, InDegree(u));
  return best;
}

std::uint32_t SocialGraph::MaxOutDegree() const {
  std::uint32_t best = 0;
  for (UserId u = 0; u < num_users_; ++u) best = std::max(best, OutDegree(u));
  return best;
}

SocialGraph SocialGraph::AsUndirected() const {
  if (!directed_) return *this;
  std::vector<Edge> edges;
  edges.reserve(out_adj_.size());
  for (UserId u = 0; u < num_users_; ++u) {
    for (UserId v : Followees(u)) {
      // Emit each unordered pair once; FromEdges symmetrizes.
      if (u < v) {
        edges.push_back(Edge{u, v});
      } else if (!std::binary_search(Followees(v).begin(), Followees(v).end(),
                                     u)) {
        edges.push_back(Edge{v, u});
      }
    }
  }
  return FromEdges(num_users_, edges, /*directed=*/false);
}

}  // namespace dynasore::graph
