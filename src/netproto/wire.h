// Framed binary wire protocol for the network serving tier.
//
// Every message on a connection is one length-prefixed frame:
//
//   offset  size  field
//   0       2     magic 0x5344 ("DS", little-endian u16)
//   2       1     version (kVersion)
//   3       1     type (MsgType)
//   4       4     payload_len (bytes following the header, u32 LE,
//                 <= kMaxPayload)
//   8       4     seq (sender-chosen request id, echoed verbatim in the
//                 response)
//   12      4     checksum: CRC-32 over header bytes [0, 12) + payload
//   16      payload_len  payload (per-type layout below)
//
// All integers are little-endian, serialized byte by byte — no struct
// punning, so the codec is alignment- and UB-safe on any input. The
// checksum covers the header's first 12 bytes and the whole payload, so
// any single-bit flip anywhere in a frame is rejected (CRC-32 detects all
// single-bit and burst-<=32 errors); flips that corrupt magic, version,
// type, or the length bound are caught by their own typed checks first.
//
// The decoder is incremental: DecodeFrame inspects a byte window and
// either yields one complete frame (kOk, `consumed` bytes), asks for more
// input (kNeedMore, nothing consumed — the prefix seen so far is still a
// plausible frame), or rejects with a typed error (never UB, never a
// crash; the conformance suite in tests/netproto_test.cc fuzzes exactly
// this contract). A rejected connection cannot resync mid-stream — the
// server drops it — so errors consume nothing.
//
// Payload layouts (request -> response):
//   kReadReq / kWriteReq  {u64 time, u32 user}        -> kOpResp / kBusyResp
//   kFlushReq             (empty)                     -> kFlushResp
//   kStatsReq             (empty)                     -> kStatsResp
//   kViewFetchReq         {u32 view}                  -> kViewFetchResp
//   kOpResp               {u8 op, u32 shard}
//   kBusyResp             (empty) — admission control rejected the op;
//                         resubmit after a drain (docs/server.md)
//   kFlushResp            {u64 executed_total, u64 batches_run}
//   kStatsResp            StatsPayload (below)
//   kViewFetchResp        {u32 view, u32 owner_shard, u8 health,
//                          u32 num_shards}
//   kErrorResp            {u16 code} — protocol violation; the server
//                         closes the connection after sending it
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace dynasore::netp {

inline constexpr std::uint16_t kMagic = 0x5344;  // "DS"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
// Bounded frame size: a header announcing more payload than this is
// rejected up front (kBadLength), so a corrupt or hostile length field can
// never make the receiver buffer gigabytes.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class MsgType : std::uint8_t {
  // Requests (client -> server).
  kReadReq = 1,
  kWriteReq = 2,
  kFlushReq = 3,
  kStatsReq = 4,
  kViewFetchReq = 5,
  // Responses (server -> client).
  kOpResp = 16,
  kBusyResp = 17,
  kFlushResp = 18,
  kStatsResp = 19,
  kViewFetchResp = 20,
  kErrorResp = 21,
};

// True for the values actually assigned above — the decoder's type check.
bool ValidMsgType(std::uint8_t raw);

enum class DecodeStatus : std::uint8_t {
  kOk,           // one frame decoded; `consumed` bytes eaten
  kNeedMore,     // prefix is plausible but incomplete; feed more bytes
  kBadMagic,     // first two bytes are not "DS"
  kBadVersion,   // version byte != kVersion
  kBadType,      // type byte names no MsgType
  kBadLength,    // payload_len > kMaxPayload
  kBadChecksum,  // CRC mismatch over header[0,12) + payload
};

const char* DecodeStatusName(DecodeStatus s);

struct FrameHeader {
  std::uint16_t magic = kMagic;
  std::uint8_t version = kVersion;
  MsgType type = MsgType::kReadReq;
  std::uint32_t payload_len = 0;
  std::uint32_t seq = 0;
  std::uint32_t checksum = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // bytes eaten; non-zero only on kOk
  Frame frame;               // valid only on kOk
};

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
std::uint32_t Crc32(std::span<const std::uint8_t> data);
// Continuation form for split header/payload coverage.
std::uint32_t Crc32(std::uint32_t seed, std::span<const std::uint8_t> data);

// Appends one complete frame (header + payload, checksum filled in) to
// `out`. Throws std::invalid_argument if payload exceeds kMaxPayload —
// encoding an undecodable frame is a caller bug, not a wire condition.
void EncodeFrame(MsgType type, std::uint32_t seq,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>* out);

// Attempts to decode one frame from the front of `buf`. See DecodeStatus.
DecodeResult DecodeFrame(std::span<const std::uint8_t> buf);

// ----- Typed payloads -----
//
// Each payload struct encodes to the exact byte layout documented in the
// header comment and decodes only from a payload of exactly that size
// (std::nullopt otherwise — a frame can checksum clean yet still carry a
// payload of the wrong shape for its type; the server answers kErrorResp).

// kReadReq / kWriteReq. The op kind is carried by the frame type.
struct OpPayload {
  SimTime time = 0;  // u64: simulated seconds, the request-log clock
  UserId user = 0;   // u32: issuing user
};

// kOpResp: the op was accepted and executed.
struct OpRespPayload {
  OpType op = OpType::kRead;   // u8: echoes the executed kind
  std::uint32_t shard = 0;     // shard that owned the request
};

// kFlushResp: everything received before the flush has executed.
struct FlushRespPayload {
  std::uint64_t executed_total = 0;  // runtime lifetime requests executed
  std::uint64_t batches_run = 0;     // micro-batch Run() calls so far
};

// kStatsResp: the server-side conservation ledger (docs/server.md).
struct StatsPayload {
  std::uint64_t ops_received = 0;    // op frames decoded
  std::uint64_t ops_executed = 0;    // ops run through the runtime
  std::uint64_t acks_sent = 0;       // kOpResp frames queued
  std::uint64_t busy_sent = 0;       // kBusyResp frames queued
  std::uint64_t batches_run = 0;     // micro-batch Run() calls
  std::uint64_t runtime_requests = 0;  // RuntimeResult totals.requests
  std::uint64_t runtime_reads = 0;
  std::uint64_t runtime_writes = 0;
  std::uint64_t e2e_samples = 0;     // RuntimeResult e2e_latency count
};

// kViewFetchReq.
struct ViewFetchPayload {
  ViewId view = 0;  // u32
};

// kViewFetchResp: routing metadata for one view.
struct ViewFetchRespPayload {
  ViewId view = 0;
  std::uint32_t owner_shard = 0;
  std::uint8_t health = 0;  // rt::ShardHealth of the owner
  std::uint32_t num_shards = 0;
};

// kErrorResp.
enum class ErrorCode : std::uint16_t {
  kBadPayload = 1,   // frame ok, payload malformed for its type
  kBadRequest = 2,   // response type sent as a request, or vice versa
  kShuttingDown = 3, // server is draining; no new ops
};

struct ErrorPayload {
  ErrorCode code = ErrorCode::kBadPayload;
};

void Encode(const OpPayload& p, std::vector<std::uint8_t>* out);
void Encode(const OpRespPayload& p, std::vector<std::uint8_t>* out);
void Encode(const FlushRespPayload& p, std::vector<std::uint8_t>* out);
void Encode(const StatsPayload& p, std::vector<std::uint8_t>* out);
void Encode(const ViewFetchPayload& p, std::vector<std::uint8_t>* out);
void Encode(const ViewFetchRespPayload& p, std::vector<std::uint8_t>* out);
void Encode(const ErrorPayload& p, std::vector<std::uint8_t>* out);

std::optional<OpPayload> DecodeOp(std::span<const std::uint8_t> payload);
std::optional<OpRespPayload> DecodeOpResp(
    std::span<const std::uint8_t> payload);
std::optional<FlushRespPayload> DecodeFlushResp(
    std::span<const std::uint8_t> payload);
std::optional<StatsPayload> DecodeStats(std::span<const std::uint8_t> payload);
std::optional<ViewFetchPayload> DecodeViewFetch(
    std::span<const std::uint8_t> payload);
std::optional<ViewFetchRespPayload> DecodeViewFetchResp(
    std::span<const std::uint8_t> payload);
std::optional<ErrorPayload> DecodeError(std::span<const std::uint8_t> payload);

}  // namespace dynasore::netp
