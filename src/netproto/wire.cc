#include "netproto/wire.h"

#include <array>
#include <stdexcept>

namespace dynasore::netp {

namespace {

// Byte-at-a-time little-endian serialization. Readers take a raw pointer
// the caller has already bounds-checked; writers append to a vector.

void PutU8(std::uint8_t v, std::vector<std::uint8_t>* out) {
  out->push_back(v);
}

void PutU16(std::uint16_t v, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// CRC-32 lookup table (IEEE 802.3, reflected polynomial 0xEDB88320),
// generated once at static-init time.
std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  return table;
}

// A fixed-size payload decoder shared by every typed payload: size check,
// then field reads at known offsets.
bool SizeIs(std::span<const std::uint8_t> payload, std::size_t n) {
  return payload.size() == n;
}

}  // namespace

bool ValidMsgType(std::uint8_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kReadReq:
    case MsgType::kWriteReq:
    case MsgType::kFlushReq:
    case MsgType::kStatsReq:
    case MsgType::kViewFetchReq:
    case MsgType::kOpResp:
    case MsgType::kBusyResp:
    case MsgType::kFlushResp:
    case MsgType::kStatsResp:
    case MsgType::kViewFetchResp:
    case MsgType::kErrorResp:
      return true;
  }
  return false;
}

const char* DecodeStatusName(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::uint32_t Crc32(std::uint32_t seed, std::span<const std::uint8_t> data) {
  const auto& table = CrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32(0, data);
}

void EncodeFrame(MsgType type, std::uint32_t seq,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>* out) {
  if (payload.size() > kMaxPayload) {
    throw std::invalid_argument(
        "netp::EncodeFrame: payload exceeds kMaxPayload — the peer's "
        "decoder would reject the frame with kBadLength");
  }
  const std::size_t start = out->size();
  PutU16(kMagic, out);
  PutU8(kVersion, out);
  PutU8(static_cast<std::uint8_t>(type), out);
  PutU32(static_cast<std::uint32_t>(payload.size()), out);
  PutU32(seq, out);
  // Checksum over header bytes [0, 12) then the payload; the field itself
  // is written after so it is never part of its own coverage.
  std::uint32_t crc =
      Crc32(std::span<const std::uint8_t>(out->data() + start, 12));
  crc = Crc32(crc, payload);
  PutU32(crc, out);
  out->insert(out->end(), payload.begin(), payload.end());
}

DecodeResult DecodeFrame(std::span<const std::uint8_t> buf) {
  DecodeResult r;
  // Reject on the earliest byte that can no longer begin a valid frame, so
  // garbage is flagged without waiting for a full header.
  if (!buf.empty() &&
      buf[0] != static_cast<std::uint8_t>(kMagic & 0xFF)) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  if (buf.size() >= 2 && GetU16(buf.data()) != kMagic) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  if (buf.size() >= 3 && buf[2] != kVersion) {
    r.status = DecodeStatus::kBadVersion;
    return r;
  }
  if (buf.size() >= 4 && !ValidMsgType(buf[3])) {
    r.status = DecodeStatus::kBadType;
    return r;
  }
  if (buf.size() < kHeaderSize) {
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  const std::uint32_t payload_len = GetU32(buf.data() + 4);
  if (payload_len > kMaxPayload) {
    r.status = DecodeStatus::kBadLength;
    return r;
  }
  const std::size_t frame_len = kHeaderSize + payload_len;
  if (buf.size() < frame_len) {
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  const std::uint32_t stored_crc = GetU32(buf.data() + 12);
  std::uint32_t crc = Crc32(buf.first(12));
  crc = Crc32(crc, buf.subspan(kHeaderSize, payload_len));
  if (crc != stored_crc) {
    r.status = DecodeStatus::kBadChecksum;
    return r;
  }

  r.status = DecodeStatus::kOk;
  r.consumed = frame_len;
  r.frame.header.magic = kMagic;
  r.frame.header.version = kVersion;
  r.frame.header.type = static_cast<MsgType>(buf[3]);
  r.frame.header.payload_len = payload_len;
  r.frame.header.seq = GetU32(buf.data() + 8);
  r.frame.header.checksum = stored_crc;
  r.frame.payload.assign(buf.begin() + kHeaderSize,
                         buf.begin() + static_cast<std::ptrdiff_t>(frame_len));
  return r;
}

// ----- Typed payloads -----

void Encode(const OpPayload& p, std::vector<std::uint8_t>* out) {
  PutU64(p.time, out);
  PutU32(p.user, out);
}

std::optional<OpPayload> DecodeOp(std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 12)) return std::nullopt;
  OpPayload p;
  p.time = GetU64(payload.data());
  p.user = GetU32(payload.data() + 8);
  return p;
}

void Encode(const OpRespPayload& p, std::vector<std::uint8_t>* out) {
  PutU8(static_cast<std::uint8_t>(p.op), out);
  PutU32(p.shard, out);
}

std::optional<OpRespPayload> DecodeOpResp(
    std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 5)) return std::nullopt;
  if (payload[0] > static_cast<std::uint8_t>(OpType::kWrite)) {
    return std::nullopt;
  }
  OpRespPayload p;
  p.op = static_cast<OpType>(payload[0]);
  p.shard = GetU32(payload.data() + 1);
  return p;
}

void Encode(const FlushRespPayload& p, std::vector<std::uint8_t>* out) {
  PutU64(p.executed_total, out);
  PutU64(p.batches_run, out);
}

std::optional<FlushRespPayload> DecodeFlushResp(
    std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 16)) return std::nullopt;
  FlushRespPayload p;
  p.executed_total = GetU64(payload.data());
  p.batches_run = GetU64(payload.data() + 8);
  return p;
}

void Encode(const StatsPayload& p, std::vector<std::uint8_t>* out) {
  PutU64(p.ops_received, out);
  PutU64(p.ops_executed, out);
  PutU64(p.acks_sent, out);
  PutU64(p.busy_sent, out);
  PutU64(p.batches_run, out);
  PutU64(p.runtime_requests, out);
  PutU64(p.runtime_reads, out);
  PutU64(p.runtime_writes, out);
  PutU64(p.e2e_samples, out);
}

std::optional<StatsPayload> DecodeStats(std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 72)) return std::nullopt;
  StatsPayload p;
  const std::uint8_t* d = payload.data();
  p.ops_received = GetU64(d);
  p.ops_executed = GetU64(d + 8);
  p.acks_sent = GetU64(d + 16);
  p.busy_sent = GetU64(d + 24);
  p.batches_run = GetU64(d + 32);
  p.runtime_requests = GetU64(d + 40);
  p.runtime_reads = GetU64(d + 48);
  p.runtime_writes = GetU64(d + 56);
  p.e2e_samples = GetU64(d + 64);
  return p;
}

void Encode(const ViewFetchPayload& p, std::vector<std::uint8_t>* out) {
  PutU32(p.view, out);
}

std::optional<ViewFetchPayload> DecodeViewFetch(
    std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 4)) return std::nullopt;
  ViewFetchPayload p;
  p.view = GetU32(payload.data());
  return p;
}

void Encode(const ViewFetchRespPayload& p, std::vector<std::uint8_t>* out) {
  PutU32(p.view, out);
  PutU32(p.owner_shard, out);
  PutU8(p.health, out);
  PutU32(p.num_shards, out);
}

std::optional<ViewFetchRespPayload> DecodeViewFetchResp(
    std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 13)) return std::nullopt;
  ViewFetchRespPayload p;
  p.view = GetU32(payload.data());
  p.owner_shard = GetU32(payload.data() + 4);
  p.health = payload[8];
  p.num_shards = GetU32(payload.data() + 9);
  return p;
}

void Encode(const ErrorPayload& p, std::vector<std::uint8_t>* out) {
  PutU16(static_cast<std::uint16_t>(p.code), out);
}

std::optional<ErrorPayload> DecodeError(
    std::span<const std::uint8_t> payload) {
  if (!SizeIs(payload, 2)) return std::nullopt;
  ErrorPayload p;
  p.code = static_cast<ErrorCode>(GetU16(payload.data()));
  return p;
}

}  // namespace dynasore::netp
